#include "runtime/metered_source.h"

#include <algorithm>
#include <cstdio>

namespace ucqn {

namespace {

std::size_t BucketFor(std::uint64_t micros) {
  std::size_t b = 0;
  while (micros > 1 && b + 1 < LatencyHistogram::kBuckets) {
    micros >>= 1;
    ++b;
  }
  return b;
}

std::string FormatDouble(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

void LatencyHistogram::Record(std::uint64_t micros) {
  ++buckets_[BucketFor(micros)];
  if (count_ == 0 || micros < min_) min_ = micros;
  max_ = std::max(max_, micros);
  sum_ += micros;
  ++count_;
}

std::uint64_t LatencyHistogram::PercentileUpperBoundMicros(double p) const {
  if (count_ == 0) return 0;
  const auto rank = static_cast<std::uint64_t>(p * static_cast<double>(count_));
  std::uint64_t seen = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    seen += buckets_[b];
    if (seen >= std::max<std::uint64_t>(rank, 1)) {
      return b == 0 ? 1 : (std::uint64_t{2} << b) - 1;
    }
  }
  return max_;
}

std::string LatencyHistogram::ToString() const {
  return "n=" + std::to_string(count_) + " mean=" + FormatDouble(mean_micros()) +
         "us p50<=" + std::to_string(PercentileUpperBoundMicros(0.5)) +
         "us p99<=" + std::to_string(PercentileUpperBoundMicros(0.99)) +
         "us max=" + std::to_string(max_micros()) + "us";
}

FetchResult MeteredSource::Fetch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::optional<Term>>& inputs) {
  const std::uint64_t start = clock_ != nullptr ? clock_->NowMicros() : 0;
  FetchResult result = inner_->Fetch(relation, pattern, inputs);
  const std::uint64_t elapsed =
      clock_ != nullptr ? clock_->NowMicros() - start : 0;

  RelationMetrics& rel = per_relation_[relation];
  RelationMetrics& access = per_access_[relation][pattern.word()];
  for (RelationMetrics* m : {&totals_, &rel, &access}) {
    ++m->calls;
    if (result.ok()) {
      m->tuples += result.tuples.size();
    } else {
      ++m->errors;
    }
    m->latency.Record(elapsed);
  }
  return result;
}

std::vector<FetchResult> MeteredSource::FetchBatch(
    const std::string& relation, const AccessPattern& pattern,
    const std::vector<std::vector<std::optional<Term>>>& inputs) {
  const std::uint64_t start = clock_ != nullptr ? clock_->NowMicros() : 0;
  std::vector<FetchResult> results =
      inner_->FetchBatch(relation, pattern, inputs);
  const std::uint64_t elapsed =
      clock_ != nullptr ? clock_->NowMicros() - start : 0;

  RelationMetrics& rel = per_relation_[relation];
  RelationMetrics& access = per_access_[relation][pattern.word()];
  for (RelationMetrics* m : {&totals_, &rel, &access}) {
    ++m->batches;
    m->batch_size.Record(inputs.size());
    // The wave is timed as one unit: under a parallel dispatcher the
    // sub-calls overlap, so this is the wave's wall-clock, not a sum.
    m->wave_micros.Record(elapsed);
    for (const FetchResult& result : results) {
      ++m->calls;
      if (result.ok()) {
        m->tuples += result.tuples.size();
      } else {
        ++m->errors;
      }
    }
  }
  return results;
}

void MeteredSource::Reset() {
  totals_ = RelationMetrics{};
  per_relation_.clear();
  per_access_.clear();
}

namespace {

std::string MetricsLine(const std::string& name, const RelationMetrics& m) {
  std::string line = name + ": calls=" + std::to_string(m.calls) +
                     " errors=" + std::to_string(m.errors) +
                     " tuples=" + std::to_string(m.tuples) + " latency[" +
                     m.latency.ToString() + "]";
  if (m.batches != 0) {
    line += " batches=" + std::to_string(m.batches) + " batch_size[" +
            m.batch_size.ToString() + "] wave[" + m.wave_micros.ToString() +
            "]";
  }
  return line;
}

// `extra_fields` is spliced into the object before its closing brace
// (", \"key\": ..." form) — used to nest the per-pattern split.
std::string MetricsJson(const RelationMetrics& m,
                        const std::string& extra_fields = "") {
  std::string out = "{\"calls\": " + std::to_string(m.calls) +
                    ", \"errors\": " + std::to_string(m.errors) +
                    ", \"tuples\": " + std::to_string(m.tuples) +
                    ", \"latency_us\": {\"count\": " +
                    std::to_string(m.latency.count()) +
                    ", \"sum\": " + std::to_string(m.latency.sum_micros()) +
                    ", \"min\": " + std::to_string(m.latency.min_micros()) +
                    ", \"max\": " + std::to_string(m.latency.max_micros()) +
                    ", \"p50\": " +
                    std::to_string(m.latency.PercentileUpperBoundMicros(0.5)) +
                    ", \"p99\": " +
                    std::to_string(m.latency.PercentileUpperBoundMicros(0.99)) +
                    ", \"buckets\": [";
  // Trailing zero buckets are elided to keep the export compact.
  std::size_t last = 0;
  for (std::size_t b = 0; b < LatencyHistogram::kBuckets; ++b) {
    if (m.latency.buckets()[b] != 0) last = b + 1;
  }
  for (std::size_t b = 0; b < last; ++b) {
    if (b != 0) out += ", ";
    out += std::to_string(m.latency.buckets()[b]);
  }
  out += "]}" + extra_fields + "}";
  return out;
}

}  // namespace

std::string MeteredSource::ToText() const {
  std::string out;
  for (const auto& [name, metrics] : per_relation_) {
    out += MetricsLine(name, metrics) + "\n";
    auto split = per_access_.find(name);
    if (split != per_access_.end() && split->second.size() > 1) {
      // Only worth a line per pattern when the relation was actually
      // reached through more than one.
      for (const auto& [word, access] : split->second) {
        out += "  " + MetricsLine(name + "^" + word, access) + "\n";
      }
    }
  }
  out += MetricsLine("TOTAL", totals_);
  return out;
}

std::string MeteredSource::ToJson() const {
  std::string out = "{\"totals\": " + MetricsJson(totals_) +
                    ", \"relations\": {";
  bool first = true;
  for (const auto& [name, metrics] : per_relation_) {
    if (!first) out += ", ";
    first = false;
    std::string patterns;
    auto split = per_access_.find(name);
    if (split != per_access_.end()) {
      patterns = ", \"patterns\": {";
      bool first_pattern = true;
      for (const auto& [word, access] : split->second) {
        if (!first_pattern) patterns += ", ";
        first_pattern = false;
        patterns += "\"" + word + "\": " + MetricsJson(access);
      }
      patterns += "}";
    }
    out += "\"" + name + "\": " + MetricsJson(metrics, patterns);
  }
  out += "}}";
  return out;
}

}  // namespace ucqn
