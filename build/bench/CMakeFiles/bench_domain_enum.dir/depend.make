# Empty dependencies file for bench_domain_enum.
# This may be replaced when dependencies are built.
