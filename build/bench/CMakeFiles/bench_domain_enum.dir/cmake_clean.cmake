file(REMOVE_RECURSE
  "CMakeFiles/bench_domain_enum.dir/bench_domain_enum.cc.o"
  "CMakeFiles/bench_domain_enum.dir/bench_domain_enum.cc.o.d"
  "bench_domain_enum"
  "bench_domain_enum.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_domain_enum.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
