file(REMOVE_RECURSE
  "CMakeFiles/bench_minimize.dir/bench_minimize.cc.o"
  "CMakeFiles/bench_minimize.dir/bench_minimize.cc.o.d"
  "bench_minimize"
  "bench_minimize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_minimize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
