file(REMOVE_RECURSE
  "CMakeFiles/bench_answerable.dir/bench_answerable.cc.o"
  "CMakeFiles/bench_answerable.dir/bench_answerable.cc.o.d"
  "bench_answerable"
  "bench_answerable.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_answerable.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
