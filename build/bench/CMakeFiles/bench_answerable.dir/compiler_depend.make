# Empty compiler generated dependencies file for bench_answerable.
# This may be replaced when dependencies are built.
