file(REMOVE_RECURSE
  "CMakeFiles/bench_plan_star.dir/bench_plan_star.cc.o"
  "CMakeFiles/bench_plan_star.dir/bench_plan_star.cc.o.d"
  "bench_plan_star"
  "bench_plan_star.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_plan_star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
