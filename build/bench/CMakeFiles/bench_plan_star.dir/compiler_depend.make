# Empty compiler generated dependencies file for bench_plan_star.
# This may be replaced when dependencies are built.
