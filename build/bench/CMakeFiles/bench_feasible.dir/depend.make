# Empty dependencies file for bench_feasible.
# This may be replaced when dependencies are built.
