file(REMOVE_RECURSE
  "CMakeFiles/bench_feasible.dir/bench_feasible.cc.o"
  "CMakeFiles/bench_feasible.dir/bench_feasible.cc.o.d"
  "bench_feasible"
  "bench_feasible.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_feasible.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
