# Empty compiler generated dependencies file for bench_unfold.
# This may be replaced when dependencies are built.
