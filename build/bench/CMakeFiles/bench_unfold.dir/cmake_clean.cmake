file(REMOVE_RECURSE
  "CMakeFiles/bench_unfold.dir/bench_unfold.cc.o"
  "CMakeFiles/bench_unfold.dir/bench_unfold.cc.o.d"
  "bench_unfold"
  "bench_unfold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_unfold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
