# Empty dependencies file for bench_answer_star.
# This may be replaced when dependencies are built.
