file(REMOVE_RECURSE
  "CMakeFiles/bench_answer_star.dir/bench_answer_star.cc.o"
  "CMakeFiles/bench_answer_star.dir/bench_answer_star.cc.o.d"
  "bench_answer_star"
  "bench_answer_star.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_answer_star.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
