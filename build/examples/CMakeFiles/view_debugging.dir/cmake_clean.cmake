file(REMOVE_RECURSE
  "CMakeFiles/view_debugging.dir/view_debugging.cc.o"
  "CMakeFiles/view_debugging.dir/view_debugging.cc.o.d"
  "view_debugging"
  "view_debugging.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_debugging.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
