# Empty dependencies file for view_debugging.
# This may be replaced when dependencies are built.
