file(REMOVE_RECURSE
  "CMakeFiles/web_service_composition.dir/web_service_composition.cc.o"
  "CMakeFiles/web_service_composition.dir/web_service_composition.cc.o.d"
  "web_service_composition"
  "web_service_composition.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/web_service_composition.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
