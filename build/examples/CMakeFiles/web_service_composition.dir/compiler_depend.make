# Empty compiler generated dependencies file for web_service_composition.
# This may be replaced when dependencies are built.
