# Empty compiler generated dependencies file for mediator_unfolding.
# This may be replaced when dependencies are built.
