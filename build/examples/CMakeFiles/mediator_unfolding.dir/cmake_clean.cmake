file(REMOVE_RECURSE
  "CMakeFiles/mediator_unfolding.dir/mediator_unfolding.cc.o"
  "CMakeFiles/mediator_unfolding.dir/mediator_unfolding.cc.o.d"
  "mediator_unfolding"
  "mediator_unfolding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediator_unfolding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
