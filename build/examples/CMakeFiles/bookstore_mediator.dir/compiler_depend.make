# Empty compiler generated dependencies file for bookstore_mediator.
# This may be replaced when dependencies are built.
