file(REMOVE_RECURSE
  "CMakeFiles/bookstore_mediator.dir/bookstore_mediator.cc.o"
  "CMakeFiles/bookstore_mediator.dir/bookstore_mediator.cc.o.d"
  "bookstore_mediator"
  "bookstore_mediator.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bookstore_mediator.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
