file(REMOVE_RECURSE
  "CMakeFiles/plan_star_test.dir/plan_star_test.cc.o"
  "CMakeFiles/plan_star_test.dir/plan_star_test.cc.o.d"
  "plan_star_test"
  "plan_star_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_star_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
