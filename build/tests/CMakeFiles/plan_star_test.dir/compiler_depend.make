# Empty compiler generated dependencies file for plan_star_test.
# This may be replaced when dependencies are built.
