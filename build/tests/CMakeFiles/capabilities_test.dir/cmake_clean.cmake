file(REMOVE_RECURSE
  "CMakeFiles/capabilities_test.dir/capabilities_test.cc.o"
  "CMakeFiles/capabilities_test.dir/capabilities_test.cc.o.d"
  "capabilities_test"
  "capabilities_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/capabilities_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
