# Empty compiler generated dependencies file for capabilities_test.
# This may be replaced when dependencies are built.
