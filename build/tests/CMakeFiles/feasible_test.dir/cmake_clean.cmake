file(REMOVE_RECURSE
  "CMakeFiles/feasible_test.dir/feasible_test.cc.o"
  "CMakeFiles/feasible_test.dir/feasible_test.cc.o.d"
  "feasible_test"
  "feasible_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/feasible_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
