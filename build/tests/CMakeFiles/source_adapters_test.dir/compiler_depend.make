# Empty compiler generated dependencies file for source_adapters_test.
# This may be replaced when dependencies are built.
