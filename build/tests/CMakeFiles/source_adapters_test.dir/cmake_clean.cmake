file(REMOVE_RECURSE
  "CMakeFiles/source_adapters_test.dir/source_adapters_test.cc.o"
  "CMakeFiles/source_adapters_test.dir/source_adapters_test.cc.o.d"
  "source_adapters_test"
  "source_adapters_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_adapters_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
