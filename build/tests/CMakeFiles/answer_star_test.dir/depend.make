# Empty dependencies file for answer_star_test.
# This may be replaced when dependencies are built.
