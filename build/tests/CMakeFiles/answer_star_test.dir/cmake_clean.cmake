file(REMOVE_RECURSE
  "CMakeFiles/answer_star_test.dir/answer_star_test.cc.o"
  "CMakeFiles/answer_star_test.dir/answer_star_test.cc.o.d"
  "answer_star_test"
  "answer_star_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/answer_star_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
