# Empty dependencies file for answerable_test.
# This may be replaced when dependencies are built.
