file(REMOVE_RECURSE
  "CMakeFiles/answerable_test.dir/answerable_test.cc.o"
  "CMakeFiles/answerable_test.dir/answerable_test.cc.o.d"
  "answerable_test"
  "answerable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/answerable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
