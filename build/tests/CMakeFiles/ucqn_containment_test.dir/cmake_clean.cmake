file(REMOVE_RECURSE
  "CMakeFiles/ucqn_containment_test.dir/ucqn_containment_test.cc.o"
  "CMakeFiles/ucqn_containment_test.dir/ucqn_containment_test.cc.o.d"
  "ucqn_containment_test"
  "ucqn_containment_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucqn_containment_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
