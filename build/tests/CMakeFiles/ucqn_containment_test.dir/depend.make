# Empty dependencies file for ucqn_containment_test.
# This may be replaced when dependencies are built.
