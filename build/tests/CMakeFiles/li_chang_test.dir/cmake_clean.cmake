file(REMOVE_RECURSE
  "CMakeFiles/li_chang_test.dir/li_chang_test.cc.o"
  "CMakeFiles/li_chang_test.dir/li_chang_test.cc.o.d"
  "li_chang_test"
  "li_chang_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/li_chang_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
