# Empty dependencies file for li_chang_test.
# This may be replaced when dependencies are built.
