# Empty compiler generated dependencies file for view_patterns_test.
# This may be replaced when dependencies are built.
