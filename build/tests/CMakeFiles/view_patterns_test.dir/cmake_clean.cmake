file(REMOVE_RECURSE
  "CMakeFiles/view_patterns_test.dir/view_patterns_test.cc.o"
  "CMakeFiles/view_patterns_test.dir/view_patterns_test.cc.o.d"
  "view_patterns_test"
  "view_patterns_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/view_patterns_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
