file(REMOVE_RECURSE
  "CMakeFiles/source_test.dir/source_test.cc.o"
  "CMakeFiles/source_test.dir/source_test.cc.o.d"
  "source_test"
  "source_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/source_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
