file(REMOVE_RECURSE
  "CMakeFiles/random_instance_test.dir/random_instance_test.cc.o"
  "CMakeFiles/random_instance_test.dir/random_instance_test.cc.o.d"
  "random_instance_test"
  "random_instance_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/random_instance_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
