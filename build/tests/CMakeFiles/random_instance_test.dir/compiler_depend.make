# Empty compiler generated dependencies file for random_instance_test.
# This may be replaced when dependencies are built.
