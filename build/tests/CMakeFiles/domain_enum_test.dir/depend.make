# Empty dependencies file for domain_enum_test.
# This may be replaced when dependencies are built.
