file(REMOVE_RECURSE
  "CMakeFiles/domain_enum_test.dir/domain_enum_test.cc.o"
  "CMakeFiles/domain_enum_test.dir/domain_enum_test.cc.o.d"
  "domain_enum_test"
  "domain_enum_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/domain_enum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
