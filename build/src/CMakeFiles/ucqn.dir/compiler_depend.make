# Empty compiler generated dependencies file for ucqn.
# This may be replaced when dependencies are built.
