file(REMOVE_RECURSE
  "libucqn.a"
)
