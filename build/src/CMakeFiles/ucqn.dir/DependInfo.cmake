
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ast/atom.cc" "src/CMakeFiles/ucqn.dir/ast/atom.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/ast/atom.cc.o.d"
  "/root/repo/src/ast/parser.cc" "src/CMakeFiles/ucqn.dir/ast/parser.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/ast/parser.cc.o.d"
  "/root/repo/src/ast/query.cc" "src/CMakeFiles/ucqn.dir/ast/query.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/ast/query.cc.o.d"
  "/root/repo/src/ast/substitution.cc" "src/CMakeFiles/ucqn.dir/ast/substitution.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/ast/substitution.cc.o.d"
  "/root/repo/src/ast/term.cc" "src/CMakeFiles/ucqn.dir/ast/term.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/ast/term.cc.o.d"
  "/root/repo/src/constraints/inclusion.cc" "src/CMakeFiles/ucqn.dir/constraints/inclusion.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/constraints/inclusion.cc.o.d"
  "/root/repo/src/containment/brute_force.cc" "src/CMakeFiles/ucqn.dir/containment/brute_force.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/containment/brute_force.cc.o.d"
  "/root/repo/src/containment/cq_containment.cc" "src/CMakeFiles/ucqn.dir/containment/cq_containment.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/containment/cq_containment.cc.o.d"
  "/root/repo/src/containment/homomorphism.cc" "src/CMakeFiles/ucqn.dir/containment/homomorphism.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/containment/homomorphism.cc.o.d"
  "/root/repo/src/containment/minimize.cc" "src/CMakeFiles/ucqn.dir/containment/minimize.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/containment/minimize.cc.o.d"
  "/root/repo/src/containment/ucqn_containment.cc" "src/CMakeFiles/ucqn.dir/containment/ucqn_containment.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/containment/ucqn_containment.cc.o.d"
  "/root/repo/src/eval/answer_star.cc" "src/CMakeFiles/ucqn.dir/eval/answer_star.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/eval/answer_star.cc.o.d"
  "/root/repo/src/eval/database.cc" "src/CMakeFiles/ucqn.dir/eval/database.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/eval/database.cc.o.d"
  "/root/repo/src/eval/domain_enum.cc" "src/CMakeFiles/ucqn.dir/eval/domain_enum.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/eval/domain_enum.cc.o.d"
  "/root/repo/src/eval/executor.cc" "src/CMakeFiles/ucqn.dir/eval/executor.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/eval/executor.cc.o.d"
  "/root/repo/src/eval/explain.cc" "src/CMakeFiles/ucqn.dir/eval/explain.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/eval/explain.cc.o.d"
  "/root/repo/src/eval/oracle.cc" "src/CMakeFiles/ucqn.dir/eval/oracle.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/eval/oracle.cc.o.d"
  "/root/repo/src/eval/planner.cc" "src/CMakeFiles/ucqn.dir/eval/planner.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/eval/planner.cc.o.d"
  "/root/repo/src/eval/source.cc" "src/CMakeFiles/ucqn.dir/eval/source.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/eval/source.cc.o.d"
  "/root/repo/src/eval/source_adapters.cc" "src/CMakeFiles/ucqn.dir/eval/source_adapters.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/eval/source_adapters.cc.o.d"
  "/root/repo/src/feasibility/answerable.cc" "src/CMakeFiles/ucqn.dir/feasibility/answerable.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/feasibility/answerable.cc.o.d"
  "/root/repo/src/feasibility/compile.cc" "src/CMakeFiles/ucqn.dir/feasibility/compile.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/feasibility/compile.cc.o.d"
  "/root/repo/src/feasibility/feasible.cc" "src/CMakeFiles/ucqn.dir/feasibility/feasible.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/feasibility/feasible.cc.o.d"
  "/root/repo/src/feasibility/li_chang.cc" "src/CMakeFiles/ucqn.dir/feasibility/li_chang.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/feasibility/li_chang.cc.o.d"
  "/root/repo/src/feasibility/plan_star.cc" "src/CMakeFiles/ucqn.dir/feasibility/plan_star.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/feasibility/plan_star.cc.o.d"
  "/root/repo/src/feasibility/reduction.cc" "src/CMakeFiles/ucqn.dir/feasibility/reduction.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/feasibility/reduction.cc.o.d"
  "/root/repo/src/feasibility/view_patterns.cc" "src/CMakeFiles/ucqn.dir/feasibility/view_patterns.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/feasibility/view_patterns.cc.o.d"
  "/root/repo/src/gen/hard_instances.cc" "src/CMakeFiles/ucqn.dir/gen/hard_instances.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/gen/hard_instances.cc.o.d"
  "/root/repo/src/gen/random_instance.cc" "src/CMakeFiles/ucqn.dir/gen/random_instance.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/gen/random_instance.cc.o.d"
  "/root/repo/src/gen/random_query.cc" "src/CMakeFiles/ucqn.dir/gen/random_query.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/gen/random_query.cc.o.d"
  "/root/repo/src/gen/scenarios.cc" "src/CMakeFiles/ucqn.dir/gen/scenarios.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/gen/scenarios.cc.o.d"
  "/root/repo/src/mediator/capabilities.cc" "src/CMakeFiles/ucqn.dir/mediator/capabilities.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/mediator/capabilities.cc.o.d"
  "/root/repo/src/mediator/unfold.cc" "src/CMakeFiles/ucqn.dir/mediator/unfold.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/mediator/unfold.cc.o.d"
  "/root/repo/src/schema/access_pattern.cc" "src/CMakeFiles/ucqn.dir/schema/access_pattern.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/schema/access_pattern.cc.o.d"
  "/root/repo/src/schema/adornment.cc" "src/CMakeFiles/ucqn.dir/schema/adornment.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/schema/adornment.cc.o.d"
  "/root/repo/src/schema/catalog.cc" "src/CMakeFiles/ucqn.dir/schema/catalog.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/schema/catalog.cc.o.d"
  "/root/repo/src/schema/relation_schema.cc" "src/CMakeFiles/ucqn.dir/schema/relation_schema.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/schema/relation_schema.cc.o.d"
  "/root/repo/src/util/strings.cc" "src/CMakeFiles/ucqn.dir/util/strings.cc.o" "gcc" "src/CMakeFiles/ucqn.dir/util/strings.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
