# Empty dependencies file for ucqnc.
# This may be replaced when dependencies are built.
