file(REMOVE_RECURSE
  "CMakeFiles/ucqnc.dir/ucqnc.cc.o"
  "CMakeFiles/ucqnc.dir/ucqnc.cc.o.d"
  "ucqnc"
  "ucqnc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ucqnc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
