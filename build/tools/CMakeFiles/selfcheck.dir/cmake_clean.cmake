file(REMOVE_RECURSE
  "CMakeFiles/selfcheck.dir/selfcheck.cc.o"
  "CMakeFiles/selfcheck.dir/selfcheck.cc.o.d"
  "selfcheck"
  "selfcheck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/selfcheck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
