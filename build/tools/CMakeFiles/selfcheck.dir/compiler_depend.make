# Empty compiler generated dependencies file for selfcheck.
# This may be replaced when dependencies are built.
