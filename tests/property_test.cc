// Property-based cross-checks of the paper's theorems on random inputs:
//
//  * the Theorem 12/13 containment engine vs. a brute-force search over all
//    completions of the frozen left-hand query (its canonical
//    counterexample space),
//  * Proposition 4 (Q ⊑ ans(Q)) and idempotence of ans,
//  * Theorem 16 (minimality of ans(Q) among feasible superqueries),
//  * soundness of the PLAN* sandwich Q^u ⊑ Q ⊑ Q^o on random instances,
//  * correctness of ANSWER*'s completeness signal,
//  * agreement of the pattern-respecting executor with the oracle.

#include <gtest/gtest.h>

#include <random>

#include "containment/brute_force.h"
#include "containment/ucqn_containment.h"
#include "eval/answer_star.h"
#include "eval/executor.h"
#include "eval/oracle.h"
#include "feasibility/answerable.h"
#include "feasibility/feasible.h"
#include "gen/random_instance.h"
#include "gen/random_query.h"
#include "schema/adornment.h"

namespace ucqn {
namespace {

Catalog SmallCatalog() {
  // Two unary and one binary relation keep the completion space tiny.
  return Catalog::MustParse("A/1: o\nB/1: o\nE/2: oo\n");
}

class ContainmentCrossCheckTest : public ::testing::TestWithParam<int> {};

TEST_P(ContainmentCrossCheckTest, EngineMatchesBruteForce) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 131 + 1);
  Catalog catalog = SmallCatalog();
  RandomQueryOptions options;
  options.num_literals = 2;
  options.num_variables = 2;
  options.negation_prob = 0.35;
  options.constant_prob = 0.0;
  options.head_arity = 1;
  int checked = 0;
  for (int i = 0; i < 40 && checked < 15; ++i) {
    ConjunctiveQuery P = RandomCq(&rng, catalog, options, "Q");
    UnionQuery Q = RandomUcq(&rng, catalog, options, 1 + (i % 2), "Q");
    if (P.head_arity() != Q.head_arity()) continue;
    std::optional<bool> brute = BruteForceContained(P, Q, catalog);
    if (!brute.has_value()) continue;
    ++checked;
    EXPECT_EQ(Contained(P, Q), *brute)
        << "P: " << P.ToString() << "\nQ:\n" << Q.ToString();
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ContainmentCrossCheckTest,
                         ::testing::Range(0, 10));

class AnsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(AnsPropertyTest, Proposition4AndIdempotence) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 17 + 3);
  RandomSchemaOptions schema_options;
  schema_options.input_slot_prob = 0.5;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 4;
  options.num_variables = 3;
  options.negation_prob = 0.25;
  options.head_arity = 1;
  for (int i = 0; i < 10; ++i) {
    UnionQuery q = RandomUcq(&rng, catalog, options, 2);
    UnionQuery ans = Ans(q, catalog);
    // Proposition 4: Q ⊑ ans(Q).
    EXPECT_TRUE(Contained(q, ans)) << q.ToString();
    // ans is idempotent.
    EXPECT_EQ(Ans(ans, catalog), ans) << q.ToString();
  }
}

TEST_P(AnsPropertyTest, Theorem16Minimality) {
  // For any executable E with Q ⊑ E, also ans(Q) ⊑ E. We construct E as
  // the (null-free) overestimate of a random weakening of Q — dropping
  // body literals — which always contains Q.
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 31 + 5);
  RandomSchemaOptions schema_options;
  schema_options.input_slot_prob = 0.5;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 4;
  options.num_variables = 3;
  options.negation_prob = 0.2;
  options.head_arity = 0;  // boolean queries: weakenings stay safe-headed
  int checked = 0;
  for (int i = 0; i < 30 && checked < 10; ++i) {
    ConjunctiveQuery q = RandomCq(&rng, catalog, options, "Q");
    // Weaken: keep a random non-empty prefix-closed subset of literals that
    // preserves safety.
    std::vector<Literal> kept;
    for (const Literal& l : q.body()) {
      std::uniform_real_distribution<double> dist(0.0, 1.0);
      if (l.positive() || dist(rng) < 0.5) kept.push_back(l);
    }
    ConjunctiveQuery weakened = q.WithBody(kept);
    if (!weakened.IsSafe()) continue;
    PlanStarResult plans = PlanStar(UnionQuery(weakened), catalog);
    if (plans.over.ContainsNull() || plans.over.IsFalseQuery()) continue;
    const UnionQuery& E = plans.over;
    if (!IsExecutable(E, catalog)) continue;
    if (!Contained(UnionQuery(q), E)) continue;  // need Q ⊑ E
    ++checked;
    EXPECT_TRUE(Contained(Ans(UnionQuery(q), catalog), E))
        << "Q: " << q.ToString() << "\nE:\n" << E.ToString();
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnsPropertyTest, ::testing::Range(0, 8));

class RuntimePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RuntimePropertyTest, PlanStarSandwichOnRandomInstances) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 97 + 11);
  RandomSchemaOptions schema_options;
  schema_options.input_slot_prob = 0.45;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 3;
  options.negation_prob = 0.3;
  options.head_arity = 1;
  RandomInstanceOptions instance_options;
  instance_options.domain_size = 5;
  instance_options.tuples_per_relation = 12;
  for (int i = 0; i < 8; ++i) {
    UnionQuery q = RandomUcq(&rng, catalog, options, 2);
    Database db = RandomDatabase(&rng, catalog, instance_options);
    DatabaseSource source(&db, &catalog);
    AnswerStarReport report = AnswerStar(q, catalog, &source);
    std::set<Tuple> truth = OracleEvaluate(q, db);

    // Underestimate sound: ansᵤ ⊆ truth.
    for (const Tuple& t : report.under) {
      EXPECT_TRUE(truth.count(t)) << q.ToString() << "\nunder tuple "
                                  << TupleToString(t);
    }
    // Overestimate covers truth modulo nulls.
    for (const Tuple& t : truth) {
      bool covered = false;
      for (const Tuple& o : report.over) {
        bool match = o.size() == t.size();
        for (std::size_t j = 0; match && j < t.size(); ++j) {
          match = o[j].IsNull() || o[j] == t[j];
        }
        if (match) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << q.ToString() << "\nmissing "
                           << TupleToString(t);
    }
    // The completeness signal is sound.
    if (report.complete) {
      EXPECT_EQ(report.under, truth) << q.ToString();
    }
  }
}

TEST_P(RuntimePropertyTest, OrderableQueriesAreRuntimeComplete) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 61 + 23);
  RandomSchemaOptions schema_options;
  schema_options.input_slot_prob = 0.3;  // generous patterns
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 3;
  options.negation_prob = 0.2;
  options.head_arity = 1;
  RandomInstanceOptions instance_options;
  for (int i = 0; i < 10; ++i) {
    UnionQuery q = RandomUcq(&rng, catalog, options, 2);
    if (!IsOrderable(q, catalog)) continue;
    PlanStarResult plans = PlanStar(q, catalog);
    EXPECT_TRUE(plans.PlansEqual()) << q.ToString();
    Database db = RandomDatabase(&rng, catalog, instance_options);
    DatabaseSource source(&db, &catalog);
    AnswerStarReport report = AnswerStar(q, catalog, &source);
    EXPECT_TRUE(report.complete) << q.ToString();
    EXPECT_EQ(report.under, OracleEvaluate(q, db)) << q.ToString();
  }
}

TEST_P(RuntimePropertyTest, ExecutorAgreesWithOracleOnExecutablePlans) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 41 + 7);
  RandomSchemaOptions schema_options;
  schema_options.input_slot_prob = 0.4;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 3;
  options.negation_prob = 0.3;
  options.head_arity = 2;
  RandomInstanceOptions instance_options;
  instance_options.domain_size = 4;
  int executed = 0;
  for (int i = 0; i < 30 && executed < 10; ++i) {
    ConjunctiveQuery q = RandomCq(&rng, catalog, options);
    AnswerablePart part = Answerable(q, catalog);
    if (part.IsFalse() || !part.unanswerable.empty()) continue;
    if (!IsExecutable(*part.answerable, catalog)) continue;
    ++executed;
    Database db = RandomDatabase(&rng, catalog, instance_options);
    DatabaseSource source(&db, &catalog);
    ExecutionResult result = Execute(*part.answerable, catalog, &source);
    ASSERT_TRUE(result.ok) << part.answerable->ToString() << "\n"
                           << result.error;
    EXPECT_EQ(result.tuples, OracleEvaluate(*part.answerable, db))
        << part.answerable->ToString();
  }
  EXPECT_GT(executed, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RuntimePropertyTest, ::testing::Range(0, 8));

}  // namespace
}  // namespace ucqn
