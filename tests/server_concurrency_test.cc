// Concurrency coverage for the daemon: many threads across many tenants
// hammering one QueryDaemon — answers must be byte-identical to serial
// runs no matter how sessions interleave on the shared cache store, stats
// catalog, and admission gate. Runs under the tsan gate via the
// `concurrency` label.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "server/daemon.h"

namespace ucqn {
namespace {

ServiceRequest QueryRequest(const std::string& id, const std::string& tenant,
                            const std::string& query) {
  ServiceRequest request;
  request.id = id;
  request.tenant = tenant;
  request.query = query;
  return request;
}

// The answer portion of a response as one canonical line — metrics and
// correlation fields stripped, so runs can be compared byte-for-byte.
std::string AnswerKey(const ServiceResponse& response) {
  ServiceResponse canonical;
  canonical.status = response.status;
  canonical.under = response.under;
  canonical.over = response.over;
  canonical.complete = response.complete;
  canonical.error = response.error;
  return canonical.ToJsonLine();
}

class DaemonConcurrencyTest : public ::testing::Test {
 protected:
  DaemonConcurrencyTest() {
    catalog_ = Catalog::MustParse("L/1: o\nB/2: io\nC/2: oo\n");
    db_ = Database::MustParseFacts(R"(
      L("a").
      L("b").
      L("c").
      B("a", "x").
      B("b", "y").
      B("c", "x").
      C("x", "1").
      C("y", "2").
    )");
    queries_ = {
        "Q(x) :- L(x).",
        "Q(x, y) :- L(x), B(x, y).",
        "Q(x, z) :- L(x), B(x, y), C(y, z).",
        "Q(x) :- L(x), not B(x, \"x\").",
    };
  }

  // The serial ground truth: each query once, one at a time, cold store.
  std::vector<std::string> SerialAnswers() {
    DatabaseSource backend(&db_, &catalog_);
    QueryDaemon daemon(&catalog_, &backend, {});
    std::vector<std::string> answers;
    for (const std::string& query : queries_) {
      answers.push_back(AnswerKey(daemon.Submit(QueryRequest("s", "t", query))));
    }
    return answers;
  }

  Catalog catalog_;
  Database db_;
  std::vector<std::string> queries_;
};

TEST_F(DaemonConcurrencyTest, ThreadsTimesTenantsMatchSerialAnswers) {
  const std::vector<std::string> expected = SerialAnswers();

  DatabaseSource backend(&db_, &catalog_);
  QueryDaemon::Options options;
  // A real admission bound, but a queue deep enough that nothing sheds —
  // this test is about answer identity under interleaving, not refusals.
  options.admission.max_in_flight = 4;
  options.admission.max_queued = 1024;
  QueryDaemon daemon(&catalog_, &backend, options);

  constexpr int kThreads = 8;
  constexpr int kRounds = 5;
  const std::vector<std::string> tenants = {"alice", "bob", "carol"};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
          const std::string& tenant = tenants[(t + round) % tenants.size()];
          ServiceResponse response = daemon.Submit(
              QueryRequest("q", tenant, queries_[qi]));
          if (AnswerKey(response) != expected[qi]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  const std::uint64_t total = kThreads * kRounds * queries_.size();
  EXPECT_EQ(daemon.queries_served(), total);
  EXPECT_EQ(daemon.admission()->counters().admitted, total);
  EXPECT_EQ(daemon.admission()->counters().shed, 0u);
  // Every tenant's in-flight ledger drained back to zero.
  for (const auto& [tenant, counters] : daemon.tenants()->counters()) {
    EXPECT_EQ(counters.in_flight, 0u) << tenant;
    EXPECT_EQ(counters.admitted, counters.completed) << tenant;
  }
  // The shared store did its job: far fewer backend calls than a
  // cache-less world (which would pay the serial cost every time).
  EXPECT_LT(backend.stats().calls, total);
}

TEST_F(DaemonConcurrencyTest, SheddingUnderPressureNeverCorruptsAnswers) {
  const std::vector<std::string> expected = SerialAnswers();

  DatabaseSource backend(&db_, &catalog_);
  QueryDaemon::Options options;
  options.admission.max_in_flight = 1;
  options.admission.max_queued = 1;
  QueryDaemon daemon(&catalog_, &backend, options);

  constexpr int kThreads = 8;
  constexpr int kRounds = 10;
  std::atomic<int> served{0};
  std::atomic<int> shed{0};
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int round = 0; round < kRounds; ++round) {
        const std::size_t qi = (t + round) % queries_.size();
        ServiceResponse response = daemon.Submit(
            QueryRequest("q", "tenant" + std::to_string(t), queries_[qi]));
        if (response.status == ServiceResponse::Status::kShed) {
          shed.fetch_add(1);
          continue;
        }
        served.fetch_add(1);
        // Whatever was admitted must still be exactly right.
        if (AnswerKey(response) != expected[qi]) mismatches.fetch_add(1);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_GT(served.load(), 0);
  EXPECT_EQ(static_cast<std::uint64_t>(served.load()),
            daemon.queries_served());
  EXPECT_EQ(static_cast<std::uint64_t>(shed.load()),
            daemon.admission()->counters().shed);
  EXPECT_EQ(daemon.admission()->counters().in_flight, 0u);
}

TEST_F(DaemonConcurrencyTest, AdaptiveModelStaysRaceFreeUnderLoad) {
  // The adaptive path copies the stats catalog per session while every
  // other session observes into it — the copy-under-lock discipline this
  // exercises is exactly what tsan checks here.
  DatabaseSource backend(&db_, &catalog_);
  QueryDaemon::Options options;
  options.adaptive_cost_model = true;
  QueryDaemon daemon(&catalog_, &backend, options);

  const std::vector<std::string> expected = SerialAnswers();
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back([&] {
      for (int round = 0; round < 8; ++round) {
        for (std::size_t qi = 0; qi < queries_.size(); ++qi) {
          ServiceResponse response =
              daemon.Submit(QueryRequest("q", "t", queries_[qi]));
          if (AnswerKey(response) != expected[qi]) mismatches.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(mismatches.load(), 0);
}

}  // namespace
}  // namespace ucqn
