#include "containment/ucqn_containment.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "gen/hard_instances.h"

namespace ucqn {
namespace {

bool CqnContained(const std::string& p, const std::string& q) {
  return Contained(MustParseRule(p), MustParseUnionQuery(q));
}

TEST(UcqnContainmentTest, DegeneratesToHomomorphismWithoutNegation) {
  EXPECT_TRUE(CqnContained("Q(x) :- R(x, y), S(y).", "Q(x) :- R(x, y)."));
  EXPECT_FALSE(CqnContained("Q(x) :- R(x, y).", "Q(x) :- R(x, y), S(y)."));
}

TEST(UcqnContainmentTest, UnsatisfiableLeftSideContainedInAnything) {
  EXPECT_TRUE(
      CqnContained("Q(x) :- R(x), not R(x).", "Q(x) :- Zzz(x)."));
}

TEST(UcqnContainmentTest, NegativeLiteralMustBeRespected) {
  // P asserts S(x) positively, Q demands ¬S(x): the only mapping is
  // disqualified.
  EXPECT_FALSE(
      CqnContained("Q(x) :- R(x), S(x).", "Q(x) :- R(x), not S(x)."));
}

TEST(UcqnContainmentTest, MatchingNegationsContain) {
  // Identical negative structure: P ⊑ Q via the Theorem 12 recursion:
  // adjoining S(x) to P makes it unsatisfiable.
  EXPECT_TRUE(
      CqnContained("Q(x) :- R(x), not S(x).", "Q(x) :- R(x), not S(x)."));
}

TEST(UcqnContainmentTest, StrongerNegationContainsWeaker) {
  // P forbids S and T; Q only forbids S: P ⊑ Q.
  EXPECT_TRUE(CqnContained("Q(x) :- R(x), not S(x), not T(x).",
                           "Q(x) :- R(x), not S(x)."));
  // Conversely Q ⋢ P: Q permits T(x).
  EXPECT_FALSE(CqnContained("Q(x) :- R(x), not S(x).",
                            "Q(x) :- R(x), not S(x), not T(x)."));
}

TEST(UcqnContainmentTest, RecursionThroughUnion) {
  // The textbook UCQ¬ case-split: R(x) ⊑ (R ∧ ¬S) ∨ (R ∧ S).
  EXPECT_TRUE(CqnContained("Q(x) :- R(x).",
                           "Q(x) :- R(x), not S(x).\n"
                           "Q(x) :- R(x), S(x)."));
  // Without the positive branch the containment fails.
  EXPECT_FALSE(CqnContained("Q(x) :- R(x).", "Q(x) :- R(x), not S(x)."));
}

TEST(UcqnContainmentTest, TwoLevelCaseSplit) {
  // R ⊑ (¬S ∧ ¬T) ∨ S ∨ T requires nested adjoining.
  EXPECT_TRUE(CqnContained("Q(x) :- R(x).",
                           "Q(x) :- R(x), not S(x), not T(x).\n"
                           "Q(x) :- R(x), S(x).\n"
                           "Q(x) :- R(x), T(x)."));
  EXPECT_FALSE(CqnContained("Q(x) :- R(x).",
                            "Q(x) :- R(x), not S(x), not T(x).\n"
                            "Q(x) :- R(x), S(x)."));
}

TEST(UcqnContainmentTest, UnionLeftSideChecksEveryDisjunct) {
  UnionQuery p = MustParseUnionQuery(R"(
    Q(x) :- R(x), S(x).
    Q(x) :- R(x), not S(x).
  )");
  UnionQuery q = MustParseUnionQuery("Q(x) :- R(x).");
  EXPECT_TRUE(Contained(p, q));
  // And the union is in fact equivalent to R(x).
  EXPECT_TRUE(Equivalent(p, q));
}

TEST(UcqnContainmentTest, FalseQueryCases) {
  UnionQuery f;
  UnionQuery q = MustParseUnionQuery("Q(x) :- R(x), not S(x).");
  EXPECT_TRUE(Contained(f, q));
  EXPECT_FALSE(Contained(q, f));
  ConjunctiveQuery unsat = MustParseRule("Q(x) :- R(x), not R(x).");
  EXPECT_TRUE(Contained(unsat, f));
}

TEST(UcqnContainmentTest, HeadConstantsRespected) {
  EXPECT_TRUE(CqnContained("Q(\"a\") :- R(\"a\").", "Q(\"a\") :- R(\"a\")."));
  EXPECT_FALSE(CqnContained("Q(\"a\") :- R(\"a\").", "Q(\"b\") :- R(\"b\")."));
  // Null in the left head behaves as an ordinary constant for containment.
  EXPECT_TRUE(CqnContained("Q(x, null) :- R(x).", "Q(x, y) :- R(x)."));
}

TEST(UcqnContainmentTest, UnsafeWitnessSkipped) {
  // Q's disjunct has w only under negation (unsafe). No total witness
  // exists, so containment conservatively fails...
  EXPECT_FALSE(CqnContained("Q(x) :- R(x).", "Q(x) :- R(x), not S(w)."));
  // ...but other disjuncts still work (paper Example 3's situation).
  EXPECT_TRUE(CqnContained("Q(x) :- R(x), T(x).",
                           "Q(x) :- R(x), not S(w).\nQ(x) :- T(x)."));
}

TEST(UcqnContainmentTest, StatsCountNodes) {
  ContainmentStats stats;
  ContainmentInstance inst = SubsetExplosionInstance(4, /*contained=*/false);
  EXPECT_FALSE(Contained(inst.P, inst.Q, &stats));
  // 2^4 = 16 subsets of adjoined atoms must all be explored.
  EXPECT_GE(stats.nodes_expanded, 16u);
  EXPECT_GT(stats.homomorphism.match_attempts, 0u);
  EXPECT_FALSE(stats.aborted);
}

TEST(UcqnContainmentTest, MemoizationCachesSubsets) {
  ContainmentStats stats;
  ContainmentInstance inst = SubsetExplosionInstance(5, /*contained=*/false);
  EXPECT_FALSE(Contained(inst.P, inst.Q, &stats));
  // Reaching each subset along many permutations must hit the cache.
  EXPECT_GT(stats.cache_hits, 0u);
}

TEST(UcqnContainmentTest, NodeBudgetAborts) {
  ContainmentOptions options;
  options.max_nodes = 4;
  ContainmentStats stats;
  ContainmentInstance inst = SubsetExplosionInstance(8, /*contained=*/false);
  EXPECT_FALSE(Contained(inst.P, inst.Q, &stats, options));
  EXPECT_TRUE(stats.aborted);
}

TEST(ContainmentWitnessTest, PositiveWitnessHasMappingOnly) {
  std::optional<ContainmentWitness> w = ContainedWithWitness(
      MustParseRule("Q(x) :- R(x, y), S(y)."),
      MustParseUnionQuery("Q(x) :- R(x, z)."));
  ASSERT_TRUE(w.has_value());
  EXPECT_FALSE(w->by_unsatisfiability);
  EXPECT_EQ(w->disjunct_index, 0u);
  EXPECT_TRUE(w->children.empty());
  EXPECT_EQ(*w->sigma.Lookup(Term::Variable("z")), Term::Variable("y"));
}

TEST(ContainmentWitnessTest, NegativeLiteralYieldsUnsatChild) {
  std::optional<ContainmentWitness> w = ContainedWithWitness(
      MustParseRule("Q(x) :- R(x), not S(x)."),
      MustParseUnionQuery("Q(x) :- R(x), not S(x)."));
  ASSERT_TRUE(w.has_value());
  ASSERT_EQ(w->children.size(), 1u);
  EXPECT_TRUE(w->children[0].by_unsatisfiability);
}

TEST(ContainmentWitnessTest, CaseSplitWitnessShape) {
  // R ⊑ (R ∧ ¬S) ∨ (R ∧ S): the root matches disjunct 0 and its single
  // child (after adjoining S(x)) matches disjunct 1.
  std::optional<ContainmentWitness> w = ContainedWithWitness(
      MustParseRule("Q(x) :- R(x)."),
      MustParseUnionQuery("Q(x) :- R(x), not S(x).\nQ(x) :- R(x), S(x)."));
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(w->disjunct_index, 0u);
  ASSERT_EQ(w->children.size(), 1u);
  EXPECT_EQ(w->children[0].disjunct_index, 1u);
  EXPECT_TRUE(w->children[0].children.empty());
  std::string text = w->ToString();
  EXPECT_NE(text.find("disjunct 0"), std::string::npos);
  EXPECT_NE(text.find("disjunct 1"), std::string::npos);
}

TEST(ContainmentWitnessTest, NoWitnessWhenNotContained) {
  EXPECT_FALSE(ContainedWithWitness(
                   MustParseRule("Q(x) :- R(x)."),
                   MustParseUnionQuery("Q(x) :- R(x), not S(x)."))
                   .has_value());
}

TEST(ContainmentWitnessTest, UnsatisfiableLeftSideIsALeaf) {
  std::optional<ContainmentWitness> w = ContainedWithWitness(
      MustParseRule("Q(x) :- R(x), not R(x)."),
      MustParseUnionQuery("Q(x) :- S(x)."));
  ASSERT_TRUE(w.has_value());
  EXPECT_TRUE(w->by_unsatisfiability);
}

TEST(ContainmentWitnessTest, AgreesWithBooleanEngine) {
  ContainmentInstance subset = SubsetExplosionInstance(4, true);
  EXPECT_TRUE(ContainedWithWitness(subset.P, subset.Q).has_value());
  ContainmentInstance hard = SubsetExplosionInstance(4, false);
  EXPECT_FALSE(ContainedWithWitness(hard.P, hard.Q).has_value());
  ContainmentInstance chain = ChainInstance(5, true);
  std::optional<ContainmentWitness> w =
      ContainedWithWitness(chain.P, chain.Q);
  ASSERT_TRUE(w.has_value());
  // The chain witness nests k = 5 deep.
  int depth = 0;
  const ContainmentWitness* node = &*w;
  while (!node->children.empty()) {
    ++depth;
    node = &node->children[0];
  }
  EXPECT_EQ(depth, 5);
}

TEST(ContainmentWitnessTest, BudgetAbortReturnsNullopt) {
  ContainmentOptions options;
  options.max_nodes = 1;
  ContainmentStats stats;
  ContainmentInstance chain = ChainInstance(5, true);
  EXPECT_FALSE(
      ContainedWithWitness(chain.P, chain.Q, &stats, options).has_value());
  EXPECT_TRUE(stats.aborted);
}

TEST(UcqnContainmentTest, HardInstanceFamiliesMatchExpectations) {
  for (int k = 1; k <= 6; ++k) {
    for (bool contained : {false, true}) {
      ContainmentInstance subset = SubsetExplosionInstance(k, contained);
      EXPECT_EQ(Contained(subset.P, subset.Q), subset.expected)
          << "subset k=" << k << " contained=" << contained;
      ContainmentInstance chain = ChainInstance(k, contained);
      EXPECT_EQ(Contained(chain.P, chain.Q), chain.expected)
          << "chain k=" << k << " contained=" << contained;
    }
  }
}

}  // namespace
}  // namespace ucqn
