// Concurrency contract of the process-wide term dictionary: racing
// interns of overlapping constant sets must converge to exactly one id
// per spelling, decoders must be safe against concurrent growth, and the
// ids observed by executions across FetchBatchAsync waves must be stable
// run over run. Runs under the tsan/ubsan gates via the labels.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "ast/parser.h"
#include "dict/term_dictionary.h"
#include "eval/executor.h"
#include "runtime/fault_injection.h"

namespace ucqn {
namespace {

TEST(DictionaryConcurrencyTest, OverlappingInternsConvergeToOneIdEach) {
  TermDictionary dict;
  constexpr int kThreads = 8;
  constexpr int kConstants = 256;

  // Every thread interns the full constant set, each starting at its own
  // offset so first-sight inserts race from all sides.
  std::vector<std::map<std::string, std::uint32_t>> seen(kThreads);
  std::atomic<int> barrier{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      barrier.fetch_add(1);
      while (barrier.load() < kThreads) std::this_thread::yield();
      for (int i = 0; i < kConstants; ++i) {
        const int k = (i + t * kConstants / kThreads) % kConstants;
        const std::string name = "c" + std::to_string(k);
        seen[t][name] = dict.Intern(name);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();

  // One id per constant, agreed on by every thread.
  for (int t = 1; t < kThreads; ++t) {
    EXPECT_EQ(seen[t], seen[0]) << "thread " << t << " saw different ids";
  }
  EXPECT_EQ(dict.size(), 1u + kConstants);  // Δ-null + the constants

  // And each id decodes back to its spelling.
  for (const auto& [name, id] : seen[0]) {
    EXPECT_EQ(dict.Decode(id), name);
  }
}

TEST(DictionaryConcurrencyTest, DecodersRaceSafelyAgainstGrowth) {
  TermDictionary dict;
  constexpr int kConstants = 4096;  // crosses a chunk boundary
  std::atomic<bool> done{false};

  // Readers chase the published size and decode everything under it
  // while the writer is still interning — exercising the acquire/release
  // handoff on size_ and the chunk pointers.
  std::vector<std::thread> readers;
  for (int r = 0; r < 4; ++r) {
    readers.emplace_back([&] {
      while (!done.load(std::memory_order_acquire)) {
        const std::size_t published = dict.size();
        for (std::size_t id = 0; id < published; ++id) {
          EXPECT_FALSE(dict.Decode(static_cast<std::uint32_t>(id)).empty());
        }
      }
    });
  }
  for (int i = 0; i < kConstants; ++i) {
    dict.Intern("g" + std::to_string(i));
  }
  done.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(dict.size(), 1u + kConstants);
}

TEST(DictionaryConcurrencyTest, IdsAreStableAcrossAsyncWaves) {
  // Two executions of the same join — parallel waves, pipelined stages,
  // overlapping FetchBatchAsync calls — must observe identical ids for
  // every constant in the global dictionary: reruns and concurrent
  // tenants key the shared cache by id, so renumbering between waves
  // would silently split cache entries.
  const Catalog catalog = Catalog::MustParse("R/2: oo io\nT/2: io\nS/1: o\n");
  const Database db = Database::MustParseFacts(R"(
    R("a", "b").
    R("c", "d").
    R("e", "b").
    T("b", "t1").
    T("d", "t2").
    S("b").
  )");
  const ConjunctiveQuery query =
      MustParseRule("Q(x, w) :- R(x, z), T(z, w), not S(z).");
  const std::vector<std::string> constants = {"a", "b",  "c",  "d",
                                              "e", "t1", "t2"};

  TermDictionary& dict = TermDictionary::Global();
  std::set<Tuple> first_answers;
  std::map<std::string, std::uint32_t> first_ids;
  for (int run = 0; run < 3; ++run) {
    SCOPED_TRACE("run " + std::to_string(run));
    DatabaseSource backend(&db, &catalog);
    FaultPlan faults;
    faults.latency_micros = 50;  // force genuinely async in-flight waves
    FaultInjectingSource slow(&backend, faults);
    ExecutionOptions options;
    options.runtime.parallelism = 4;
    // Run 0 is the depth-1 columnar loop: it encodes every fetched tuple,
    // interning the full active domain. The later runs pipeline — their
    // overlapping FetchBatchAsync waves intern through the same global
    // dictionary and must observe the ids run 0 minted.
    options.runtime.pipeline_depth = run == 0 ? 1 : 2;
    options.runtime.metering = true;
    ExecutionResult result = Execute(query, catalog, &slow, options);
    ASSERT_TRUE(result.ok) << result.error;

    std::map<std::string, std::uint32_t> ids;
    for (const std::string& constant : constants) {
      ids[constant] = dict.Find(constant);
      EXPECT_NE(ids[constant], TermDictionary::kAbsentId) << constant;
    }
    if (run == 0) {
      first_answers = result.tuples;
      first_ids = ids;
      EXPECT_EQ(result.tuples.size(), 1u);  // Q("c","t2")
    } else {
      EXPECT_EQ(result.tuples, first_answers);
      EXPECT_EQ(ids, first_ids);
    }
  }
}

TEST(DictionaryConcurrencyTest, ParallelExecutionsShareOneIdSpace) {
  // Concurrent executions on separate threads intern through the same
  // global dictionary; afterwards every constant still has exactly one
  // id and both executions produced correct answers.
  const Catalog catalog = Catalog::MustParse("P/2: oo io\n");
  const Database db = Database::MustParseFacts(R"(
    P("p1", "q1").
    P("p2", "q2").
    P("p3", "q3").
  )");
  const ConjunctiveQuery query = MustParseRule("Q(x, y) :- P(x, y).");

  constexpr int kThreads = 6;
  std::vector<std::set<Tuple>> answers(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      DatabaseSource backend(&db, &catalog);
      ExecutionOptions options;
      options.runtime.parallelism = 2;
      ExecutionResult result = Execute(query, catalog, &backend, options);
      if (result.ok) answers[t] = result.tuples;
    });
  }
  for (std::thread& thread : threads) thread.join();

  TermDictionary& dict = TermDictionary::Global();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(answers[t].size(), 3u) << "thread " << t;
  }
  for (const std::string& constant : {"p1", "p2", "p3", "q1", "q2", "q3"}) {
    const std::uint32_t id = dict.Find(constant);
    ASSERT_NE(id, TermDictionary::kAbsentId) << constant;
    EXPECT_EQ(dict.Decode(id), constant);
  }
}

}  // namespace
}  // namespace ucqn
