#include "gen/random_query.h"

#include <gtest/gtest.h>

namespace ucqn {
namespace {

TEST(RandomCatalogTest, RespectsOptions) {
  std::mt19937 rng(1);
  RandomSchemaOptions options;
  options.num_relations = 5;
  options.min_arity = 2;
  options.max_arity = 3;
  Catalog catalog = RandomCatalog(&rng, options);
  EXPECT_EQ(catalog.size(), 5u);
  for (const RelationSchema* schema : catalog.Relations()) {
    EXPECT_GE(schema->arity(), 2u);
    EXPECT_LE(schema->arity(), 3u);
    EXPECT_FALSE(schema->patterns().empty());
    for (const AccessPattern& p : schema->patterns()) {
      EXPECT_EQ(p.arity(), schema->arity());
    }
  }
}

TEST(RandomCatalogTest, DeterministicUnderSeed) {
  RandomSchemaOptions options;
  std::mt19937 rng1(42), rng2(42);
  EXPECT_EQ(RandomCatalog(&rng1, options).ToString(),
            RandomCatalog(&rng2, options).ToString());
}

class RandomCqTest : public ::testing::TestWithParam<int> {};

TEST_P(RandomCqTest, GeneratedQueriesAreWellFormed) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  Catalog catalog = RandomCatalog(&rng, {});
  RandomQueryOptions options;
  options.num_literals = 5;
  options.num_variables = 4;
  options.negation_prob = 0.4;
  options.constant_prob = 0.1;
  for (int i = 0; i < 25; ++i) {
    ConjunctiveQuery q = RandomCq(&rng, catalog, options);
    EXPECT_TRUE(q.IsSafe()) << q.ToString();
    EXPECT_EQ(q.body().size(), 5u);
    std::string error;
    EXPECT_TRUE(catalog.CoversQuery(q, &error)) << error;
  }
}

TEST_P(RandomCqTest, ShapesAreHonored) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 500);
  RandomSchemaOptions schema_options;
  schema_options.min_arity = 2;  // chains need arity >= 2 to be interesting
  Catalog catalog = RandomCatalog(&rng, schema_options);

  RandomQueryOptions star;
  star.shape = QueryShape::kStar;
  star.num_literals = 4;
  star.constant_prob = 0.0;
  ConjunctiveQuery sq = RandomCq(&rng, catalog, star);
  for (const Literal& l : sq.body()) {
    EXPECT_EQ(l.args()[0], Term::Variable("v0")) << sq.ToString();
  }

  RandomQueryOptions chain;
  chain.shape = QueryShape::kChain;
  chain.num_literals = 4;
  chain.constant_prob = 0.0;
  ConjunctiveQuery cq = RandomCq(&rng, catalog, chain);
  // Consecutive literals share a variable (last arg of i == first of i+1).
  for (std::size_t i = 0; i + 1 < cq.body().size(); ++i) {
    const std::vector<Term>& cur = cq.body()[i].args();
    EXPECT_EQ(cur.back(), cq.body()[i + 1].args()[0]) << cq.ToString();
  }
}

TEST_P(RandomCqTest, NegationRespectsSafety) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 900);
  Catalog catalog = RandomCatalog(&rng, {});
  RandomQueryOptions options;
  options.negation_prob = 1.0;  // negate as much as safety allows
  options.num_literals = 6;
  options.num_variables = 3;
  for (int i = 0; i < 10; ++i) {
    ConjunctiveQuery q = RandomCq(&rng, catalog, options);
    EXPECT_TRUE(q.IsSafe()) << q.ToString();
    // At least one literal must stay positive for a query with variables.
    if (!q.AllVariables().empty()) {
      EXPECT_FALSE(q.PositiveBody().empty()) << q.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomCqTest, ::testing::Range(0, 5));

TEST(RandomUcqTest, SharedHeads) {
  std::mt19937 rng(7);
  Catalog catalog = RandomCatalog(&rng, {});
  RandomQueryOptions options;
  options.head_arity = 1;
  UnionQuery q = RandomUcq(&rng, catalog, options, 4);
  EXPECT_EQ(q.size(), 4u);
  EXPECT_EQ(q.head_arity(), 1u);
  EXPECT_TRUE(q.IsSafe());
}

TEST(RandomCqTest, DeterministicUnderSeed) {
  Catalog catalog;
  {
    std::mt19937 rng(3);
    catalog = RandomCatalog(&rng, {});
  }
  RandomQueryOptions options;
  std::mt19937 a(11), b(11);
  EXPECT_EQ(RandomCq(&a, catalog, options).ToString(),
            RandomCq(&b, catalog, options).ToString());
}

}  // namespace
}  // namespace ucqn
