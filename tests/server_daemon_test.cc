// QueryDaemon: the multi-tenant service core — sessions over the shared
// runtime, tenant quotas, admission shed/drain behavior under
// over-admission, snapshot spill/restore, and the warm-restart contract
// (a previously seen query costs zero physical source calls).

#include "server/daemon.h"

#include <gtest/gtest.h>

#include <atomic>
#include <condition_variable>
#include <cstdio>
#include <filesystem>
#include <mutex>
#include <string>
#include <thread>

#include "server/snapshot.h"

namespace ucqn {
namespace {

// Wraps a source so every Fetch parks until the gate opens — the test's
// handle on "a session is in flight right now".
class GatedSource : public Source {
 public:
  explicit GatedSource(Source* inner) : inner_(inner) {}

  FetchResult Fetch(const std::string& relation, const AccessPattern& pattern,
                    const std::vector<std::optional<Term>>& inputs) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++entered_;
      cv_.notify_all();
      cv_.wait(lock, [&] { return open_; });
    }
    return inner_->Fetch(relation, pattern, inputs);
  }

  void WaitUntilEntered(int n) {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return entered_ >= n; });
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }

 private:
  Source* inner_;
  std::mutex mu_;
  std::condition_variable cv_;
  int entered_ = 0;
  bool open_ = false;
};

ServiceRequest QueryRequest(const std::string& id, const std::string& tenant,
                            const std::string& query) {
  ServiceRequest request;
  request.id = id;
  request.tenant = tenant;
  request.query = query;
  return request;
}

class DaemonTest : public ::testing::Test {
 protected:
  DaemonTest() {
    catalog_ = Catalog::MustParse("L/1: o\nB/2: io\n");
    db_ = Database::MustParseFacts(R"(
      L("a").
      L("b").
      B("a", "x").
      B("b", "y").
    )");
  }

  Catalog catalog_;
  Database db_;
  const std::string join_query_ = "Q(x, y) :- L(x), B(x, y).";
};

TEST_F(DaemonTest, ServesQueriesOverOneSharedCache) {
  DatabaseSource backend(&db_, &catalog_);
  QueryDaemon daemon(&catalog_, &backend, {});

  ServiceResponse cold = daemon.Submit(QueryRequest("q1", "alice", join_query_));
  ASSERT_EQ(cold.status, ServiceResponse::Status::kOk) << cold.error;
  EXPECT_EQ(cold.under.size(), 2u);
  EXPECT_TRUE(cold.complete);
  EXPECT_GT(cold.physical_calls, 0u);

  // A different tenant repeats the query: every call hits the shared
  // store — the multi-tenant reuse the daemon exists for.
  const std::uint64_t backend_calls = backend.stats().calls;
  ServiceResponse warm = daemon.Submit(QueryRequest("q2", "bob", join_query_));
  ASSERT_EQ(warm.status, ServiceResponse::Status::kOk) << warm.error;
  EXPECT_EQ(warm.under, cold.under);
  EXPECT_EQ(warm.over, cold.over);
  EXPECT_EQ(backend.stats().calls, backend_calls);
  EXPECT_GT(warm.cache_hits, 0u);
  EXPECT_EQ(warm.cache_misses, 0u);
  EXPECT_EQ(daemon.queries_served(), 2u);

  const std::string status = daemon.StatusJson();
  EXPECT_NE(status.find("\"queries_served\": 2"), std::string::npos);
  EXPECT_NE(status.find("\"alice\""), std::string::npos);
  EXPECT_NE(status.find("\"bob\""), std::string::npos);
}

TEST_F(DaemonTest, BadQueriesPoisonOnlyThemselves) {
  DatabaseSource backend(&db_, &catalog_);
  QueryDaemon daemon(&catalog_, &backend, {});

  ServiceResponse parse_error =
      daemon.Submit(QueryRequest("q1", "alice", "Q(x) :- L(x"));
  EXPECT_EQ(parse_error.status, ServiceResponse::Status::kError);
  EXPECT_NE(parse_error.error.find("query error"), std::string::npos);

  ServiceResponse schema_error =
      daemon.Submit(QueryRequest("q2", "alice", "Q(x) :- Missing(x)."));
  EXPECT_EQ(schema_error.status, ServiceResponse::Status::kError);
  EXPECT_NE(schema_error.error.find("schema mismatch"), std::string::npos);

  // A garbage line through the transport path is also just one error.
  const std::string bad = daemon.SubmitLine("not json at all");
  EXPECT_NE(bad.find("\"status\": \"error\""), std::string::npos);

  ServiceResponse ok = daemon.Submit(QueryRequest("q3", "alice", join_query_));
  EXPECT_EQ(ok.status, ServiceResponse::Status::kOk) << ok.error;
}

TEST_F(DaemonTest, TenantQuotaRefusesConcurrentOveruse) {
  DatabaseSource backend(&db_, &catalog_);
  GatedSource gated(&backend);
  QueryDaemon::Options options;
  options.default_quota.max_concurrent = 1;
  QueryDaemon daemon(&catalog_, &gated, options);

  std::thread busy([&] {
    ServiceResponse r = daemon.Submit(QueryRequest("q1", "alice", join_query_));
    EXPECT_EQ(r.status, ServiceResponse::Status::kOk) << r.error;
  });
  gated.WaitUntilEntered(1);

  // alice is at her cap; bob is not.
  ServiceResponse refused =
      daemon.Submit(QueryRequest("q2", "alice", join_query_));
  EXPECT_EQ(refused.status, ServiceResponse::Status::kQuotaRefused);

  gated.Open();
  busy.join();
  // With her slot back, alice is served again.
  ServiceResponse ok = daemon.Submit(QueryRequest("q3", "alice", join_query_));
  EXPECT_EQ(ok.status, ServiceResponse::Status::kOk) << ok.error;
}

TEST_F(DaemonTest, OverAdmissionShedsInsteadOfQueueingUnbounded) {
  DatabaseSource backend(&db_, &catalog_);
  GatedSource gated(&backend);
  QueryDaemon::Options options;
  options.admission.max_in_flight = 1;
  options.admission.max_queued = 0;
  QueryDaemon daemon(&catalog_, &gated, options);

  std::thread busy([&] {
    ServiceResponse r = daemon.Submit(QueryRequest("q1", "alice", join_query_));
    EXPECT_EQ(r.status, ServiceResponse::Status::kOk) << r.error;
  });
  gated.WaitUntilEntered(1);

  ServiceResponse shed = daemon.Submit(QueryRequest("q2", "bob", join_query_));
  EXPECT_EQ(shed.status, ServiceResponse::Status::kShed);
  EXPECT_EQ(daemon.admission()->counters().shed, 1u);
  // The shed request's tenant slot was released, not leaked.
  EXPECT_EQ(daemon.tenants()->counters()["bob"].in_flight, 0u);

  gated.Open();
  busy.join();
  ServiceResponse ok = daemon.Submit(QueryRequest("q3", "bob", join_query_));
  EXPECT_EQ(ok.status, ServiceResponse::Status::kOk) << ok.error;
}

TEST_F(DaemonTest, DrainFinishesInFlightAndRefusesNew) {
  DatabaseSource backend(&db_, &catalog_);
  GatedSource gated(&backend);
  QueryDaemon daemon(&catalog_, &gated, {});

  std::atomic<bool> in_flight_done{false};
  std::thread busy([&] {
    ServiceResponse r = daemon.Submit(QueryRequest("q1", "alice", join_query_));
    EXPECT_EQ(r.status, ServiceResponse::Status::kOk) << r.error;
    in_flight_done.store(true);
  });
  gated.WaitUntilEntered(1);

  std::atomic<bool> drained{false};
  std::thread drainer([&] {
    daemon.Drain();
    drained.store(true);
  });
  while (!daemon.admission()->draining()) std::this_thread::yield();

  // New arrivals are refused while the in-flight session runs on.
  ServiceResponse refused =
      daemon.Submit(QueryRequest("q2", "bob", join_query_));
  EXPECT_EQ(refused.status, ServiceResponse::Status::kDraining);
  EXPECT_FALSE(drained.load());

  gated.Open();
  busy.join();
  drainer.join();
  EXPECT_TRUE(in_flight_done.load());
  EXPECT_TRUE(drained.load());
}

TEST_F(DaemonTest, WarmRestartServesSeenQueriesWithZeroPhysicalCalls) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "ucqnd_warm_restart")
          .string();
  std::filesystem::remove_all(dir);
  QueryDaemon::Options options;
  options.snapshot_dir = dir;

  ServiceResponse cold;
  {
    DatabaseSource backend(&db_, &catalog_);
    QueryDaemon daemon(&catalog_, &backend, options);
    SnapshotLoadReport report;
    std::string error;
    ASSERT_TRUE(daemon.LoadSnapshots(&report, &error)) << error;
    EXPECT_FALSE(report.cache_loaded);  // first boot: nothing to load
    cold = daemon.Submit(QueryRequest("q1", "alice", join_query_));
    ASSERT_EQ(cold.status, ServiceResponse::Status::kOk) << cold.error;
    EXPECT_GT(cold.physical_calls, 0u);
    daemon.Drain();  // spills cache.json + stats.json
  }

  // A new process: fresh backend, fresh daemon, same snapshot dir. The
  // seen query is served entirely from the restored cache — the backend
  // is never called at all.
  DatabaseSource backend(&db_, &catalog_);
  QueryDaemon daemon(&catalog_, &backend, options);
  SnapshotLoadReport report;
  std::string error;
  ASSERT_TRUE(daemon.LoadSnapshots(&report, &error)) << error;
  EXPECT_TRUE(report.cache_loaded);
  EXPECT_TRUE(report.stats_loaded);
  EXPECT_GT(report.cache_entries, 0u);

  ServiceResponse warm = daemon.Submit(QueryRequest("w1", "bob", join_query_));
  ASSERT_EQ(warm.status, ServiceResponse::Status::kOk) << warm.error;
  EXPECT_EQ(warm.under, cold.under);
  EXPECT_EQ(warm.over, cold.over);
  EXPECT_EQ(warm.complete, cold.complete);
  EXPECT_EQ(warm.physical_calls, 0u);
  EXPECT_EQ(backend.stats().calls, 0u);
  std::filesystem::remove_all(dir);
}

TEST_F(DaemonTest, AdminOpsReportAndInvalidate) {
  DatabaseSource backend(&db_, &catalog_);
  QueryDaemon daemon(&catalog_, &backend, {});
  ASSERT_EQ(daemon.Submit(QueryRequest("q1", "alice", join_query_)).status,
            ServiceResponse::Status::kOk);
  EXPECT_GT(daemon.shared_cache()->size(), 0u);

  ServiceRequest stats;
  stats.op = ServiceRequest::Op::kStats;
  stats.id = "s1";
  ServiceResponse stats_response = daemon.Submit(stats);
  ASSERT_EQ(stats_response.status, ServiceResponse::Status::kOk);
  EXPECT_NE(stats_response.payload_json.find("\"queries_served\": 1"),
            std::string::npos);

  ServiceRequest invalidate;
  invalidate.op = ServiceRequest::Op::kInvalidate;
  ServiceResponse inv_response = daemon.Submit(invalidate);
  ASSERT_EQ(inv_response.status, ServiceResponse::Status::kOk);
  EXPECT_EQ(daemon.shared_cache()->size(), 0u);

  // Snapshot op without a configured dir is a per-request error, not a
  // crash — and not a daemon-wide failure.
  ServiceRequest snapshot;
  snapshot.op = ServiceRequest::Op::kSnapshot;
  ServiceResponse snap_response = daemon.Submit(snapshot);
  EXPECT_EQ(snap_response.status, ServiceResponse::Status::kError);
  EXPECT_EQ(daemon.Submit(QueryRequest("q2", "alice", join_query_)).status,
            ServiceResponse::Status::kOk);
}

TEST_F(DaemonTest, TenantCallBudgetCapsTheRequestAsk) {
  DatabaseSource backend(&db_, &catalog_);
  QueryDaemon::Options options;
  options.default_quota.max_calls_per_query = 1;
  QueryDaemon daemon(&catalog_, &backend, options);

  // The join needs 3 physical calls; a 1-call tenant budget stops it.
  ServiceRequest request = QueryRequest("q1", "alice", join_query_);
  request.max_calls = 100;  // the request cannot raise its tenant's cap
  ServiceResponse capped = daemon.Submit(request);
  EXPECT_EQ(capped.status, ServiceResponse::Status::kError);
  EXPECT_FALSE(capped.error.empty());
}

TEST_F(DaemonTest, InvalidateOpForgetsStatsSoThePlannerReprices) {
  // The staleness bugfix: `invalidate` used to clear the shared cache but
  // leave the StatsCatalog, so the adaptive planner kept pricing the
  // changed service with pre-update latencies and fanouts. Both ledgers
  // must drop together.
  DatabaseSource backend(&db_, &catalog_);
  QueryDaemon::Options options;
  options.adaptive_cost_model = true;
  QueryDaemon daemon(&catalog_, &backend, options);
  ASSERT_EQ(daemon.Submit(QueryRequest("q1", "alice", join_query_)).status,
            ServiceResponse::Status::kOk);
  {
    std::lock_guard<std::mutex> lock(*daemon.stats_mu());
    ASSERT_NE(daemon.stats()->Find("B"), nullptr);
    ASSERT_NE(daemon.stats()->Find("L"), nullptr);
  }

  ServiceRequest invalidate;
  invalidate.op = ServiceRequest::Op::kInvalidate;
  invalidate.relation = "B";
  ServiceResponse scoped = daemon.Submit(invalidate);
  ASSERT_EQ(scoped.status, ServiceResponse::Status::kOk);
  EXPECT_NE(scoped.payload_json.find("\"stats_dropped\": "),
            std::string::npos);
  {
    std::lock_guard<std::mutex> lock(*daemon.stats_mu());
    EXPECT_EQ(daemon.stats()->Find("B"), nullptr);  // re-priced from defaults
    EXPECT_NE(daemon.stats()->Find("L"), nullptr);  // untouched relation
  }

  // The next run re-observes B from scratch — fresh post-change stats.
  ASSERT_EQ(daemon.Submit(QueryRequest("q2", "alice", join_query_)).status,
            ServiceResponse::Status::kOk);
  {
    std::lock_guard<std::mutex> lock(*daemon.stats_mu());
    EXPECT_NE(daemon.stats()->Find("B"), nullptr);
  }

  // Relation-less invalidate forgets everything.
  invalidate.relation.clear();
  ASSERT_EQ(daemon.Submit(invalidate).status, ServiceResponse::Status::kOk);
  {
    std::lock_guard<std::mutex> lock(*daemon.stats_mu());
    EXPECT_TRUE(daemon.stats()->empty());
  }
}

TEST_F(DaemonTest, StandingQueriesAreMaintainedByDeltaOps) {
  Database db = db_;  // the daemon moves this instance under delta ops
  DatabaseSource backend(&db, &catalog_);
  QueryDaemon::Options options;
  options.database = &db;
  QueryDaemon daemon(&catalog_, &backend, options);

  ServiceRequest standing = QueryRequest("s1", "alice", join_query_);
  standing.standing = true;
  ServiceResponse registered = daemon.Submit(standing);
  ASSERT_EQ(registered.status, ServiceResponse::Status::kOk)
      << registered.error;
  EXPECT_EQ(daemon.standing_count(), 1u);

  ServiceRequest delta;
  delta.op = ServiceRequest::Op::kDelta;
  delta.tenant = "alice";
  delta.relation = "B";
  delta.insert_tuples = {{Term::Constant("a"), Term::Constant("x2")}};
  ServiceResponse applied = daemon.Submit(delta);
  ASSERT_EQ(applied.status, ServiceResponse::Status::kOk) << applied.error;
  EXPECT_NE(applied.payload_json.find("\"inserted\": 1"), std::string::npos);
  EXPECT_NE(applied.payload_json.find("\"standing_updated\": 1"),
            std::string::npos);
  EXPECT_TRUE(db.Contains("B", {Term::Constant("a"), Term::Constant("x2")}));

  ServiceRequest answers;
  answers.op = ServiceRequest::Op::kAnswers;
  answers.tenant = "alice";
  answers.id = "s1";
  ServiceResponse maintained = daemon.Submit(answers);
  ASSERT_EQ(maintained.status, ServiceResponse::Status::kOk)
      << maintained.error;
  EXPECT_EQ(maintained.under.size(), 3u);
  EXPECT_EQ(maintained.under.count(
                {Term::Constant("a"), Term::Constant("x2")}),
            1u);

  // Deleting a scan-side tuple kills its derivations.
  delta.insert_tuples.clear();
  delta.relation = "L";
  delta.delete_tuples = {{Term::Constant("a")}};
  ASSERT_EQ(daemon.Submit(delta).status, ServiceResponse::Status::kOk);
  maintained = daemon.Submit(answers);
  ASSERT_EQ(maintained.status, ServiceResponse::Status::kOk);
  EXPECT_EQ(maintained.under,
            std::set<Tuple>({{Term::Constant("b"), Term::Constant("y")}}));

  // A delta restating the current instance is a no-op: nothing effective,
  // no maintenance work.
  delta.delete_tuples = {{Term::Constant("zzz")}};
  ServiceResponse noop = daemon.Submit(delta);
  ASSERT_EQ(noop.status, ServiceResponse::Status::kOk);
  EXPECT_NE(noop.payload_json.find("\"inserted\": 0"), std::string::npos);
  EXPECT_NE(noop.payload_json.find("\"standing_updated\": 0"),
            std::string::npos);

  // Standing registrations are tenant-scoped.
  answers.tenant = "bob";
  ServiceResponse missing = daemon.Submit(answers);
  EXPECT_EQ(missing.status, ServiceResponse::Status::kError);
  EXPECT_NE(missing.error.find("no standing query"), std::string::npos);
}

TEST_F(DaemonTest, DeltaOpValidation) {
  // Without an attached mutable database, delta ops are refused.
  DatabaseSource backend(&db_, &catalog_);
  QueryDaemon detached(&catalog_, &backend, {});
  ServiceRequest delta;
  delta.op = ServiceRequest::Op::kDelta;
  delta.relation = "B";
  delta.insert_tuples = {{Term::Constant("a"), Term::Constant("x2")}};
  ServiceResponse refused = detached.Submit(delta);
  EXPECT_EQ(refused.status, ServiceResponse::Status::kError);
  EXPECT_NE(refused.error.find("no mutable database"), std::string::npos);

  Database db = db_;
  QueryDaemon::Options options;
  options.database = &db;
  QueryDaemon daemon(&catalog_, &backend, options);

  delta.relation = "Nope";
  ServiceResponse unknown = daemon.Submit(delta);
  EXPECT_EQ(unknown.status, ServiceResponse::Status::kError);
  EXPECT_NE(unknown.error.find("unknown relation"), std::string::npos);

  delta.relation = "B";
  delta.insert_tuples = {{Term::Constant("just-one")}};
  ServiceResponse arity = daemon.Submit(delta);
  EXPECT_EQ(arity.status, ServiceResponse::Status::kError);
  EXPECT_NE(arity.error.find("arity mismatch"), std::string::npos);
  // The database was never touched by the rejected batches.
  EXPECT_EQ(db.TotalTuples(), db_.TotalTuples());
}

}  // namespace
}  // namespace ucqn
