#include "containment/brute_force.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace ucqn {
namespace {

Catalog SmallCatalog() {
  return Catalog::MustParse("A/1: o\nB/1: o\nE/2: oo\n");
}

std::optional<bool> Check(const std::string& p, const std::string& q) {
  return BruteForceContained(MustParseRule(p), MustParseUnionQuery(q),
                             SmallCatalog());
}

TEST(BruteForceContainedTest, PositiveCases) {
  EXPECT_EQ(Check("Q(x) :- A(x), B(x).", "Q(x) :- A(x)."),
            std::optional<bool>(true));
  EXPECT_EQ(Check("Q(x) :- A(x).", "Q(x) :- A(x), B(x)."),
            std::optional<bool>(false));
}

TEST(BruteForceContainedTest, NegationCaseSplit) {
  EXPECT_EQ(Check("Q(x) :- A(x).",
                  "Q(x) :- A(x), not B(x).\nQ(x) :- A(x), B(x)."),
            std::optional<bool>(true));
  EXPECT_EQ(Check("Q(x) :- A(x).", "Q(x) :- A(x), not B(x)."),
            std::optional<bool>(false));
}

TEST(BruteForceContainedTest, UnsatisfiableLeftSide) {
  EXPECT_EQ(Check("Q(x) :- A(x), not A(x).", "Q(x) :- B(x)."),
            std::optional<bool>(true));
}

TEST(BruteForceContainedTest, FrozenNegativesForbidAtoms) {
  // P's own ¬B(x) must hold in every completion considered: P ⊑ the
  // matching ¬B query.
  EXPECT_EQ(Check("Q(x) :- A(x), not B(x).", "Q(x) :- A(x), not B(x)."),
            std::optional<bool>(true));
}

TEST(BruteForceContainedTest, ConstantsFromBothSidesEnterTheDomain) {
  // Q's constant is not P's: containment must fail because x can be
  // frozen to something other than "c".
  EXPECT_EQ(Check("Q(x) :- A(x).", "Q(x) :- A(x), B(\"c\")."),
            std::optional<bool>(false));
}

TEST(BruteForceContainedTest, CapReturnsNullopt) {
  BruteForceOptions options;
  options.max_free_atoms = 1;
  std::optional<bool> result = BruteForceContained(
      MustParseRule("Q(x) :- E(x, y)."),
      MustParseUnionQuery("Q(x) :- E(x, x)."), SmallCatalog(), options);
  EXPECT_FALSE(result.has_value());
}

TEST(BruteForceContainedTest, UndeclaredRelationReturnsNullopt) {
  EXPECT_FALSE(Check("Q(x) :- Zzz(x).", "Q(x) :- Zzz(x).").has_value());
}

}  // namespace
}  // namespace ucqn
