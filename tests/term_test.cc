#include "ast/term.h"

#include <gtest/gtest.h>

#include <set>
#include <unordered_set>

namespace ucqn {
namespace {

TEST(TermTest, VariableBasics) {
  Term x = Term::Variable("x");
  EXPECT_TRUE(x.IsVariable());
  EXPECT_FALSE(x.IsConstant());
  EXPECT_FALSE(x.IsNull());
  EXPECT_FALSE(x.IsGround());
  EXPECT_EQ(x.name(), "x");
  EXPECT_EQ(x.ToString(), "x");
}

TEST(TermTest, ConstantBasics) {
  Term c = Term::Constant("Knuth");
  EXPECT_TRUE(c.IsConstant());
  EXPECT_TRUE(c.IsGround());
  EXPECT_EQ(c.ToString(), "Knuth");
}

TEST(TermTest, NullBasics) {
  Term n = Term::Null();
  EXPECT_TRUE(n.IsNull());
  EXPECT_TRUE(n.IsGround());
  EXPECT_FALSE(n.IsConstant());
  EXPECT_EQ(n.ToString(), "null");
}

TEST(TermTest, EqualityDistinguishesKinds) {
  // A variable named "x" and a constant named "x" are different terms.
  EXPECT_NE(Term::Variable("x"), Term::Constant("x"));
  EXPECT_EQ(Term::Variable("x"), Term::Variable("x"));
  EXPECT_NE(Term::Variable("x"), Term::Variable("y"));
  EXPECT_EQ(Term::Null(), Term::Null());
  EXPECT_NE(Term::Null(), Term::Constant("null"));
}

TEST(TermTest, ConstantQuotingRoundTrip) {
  // Lowercase-led constants would read back as variables, so they print
  // quoted; uppercase-led identifiers and numbers print bare.
  EXPECT_EQ(Term::Constant("knuth").ToString(), "\"knuth\"");
  EXPECT_EQ(Term::Constant("Knuth").ToString(), "Knuth");
  EXPECT_EQ(Term::Constant("42").ToString(), "42");
  EXPECT_EQ(Term::Constant("with space").ToString(), "\"with space\"");
  EXPECT_EQ(Term::Constant("null").ToString(), "\"null\"");
  EXPECT_EQ(Term::Constant("").ToString(), "\"\"");
}

TEST(TermTest, OrderingIsTotal) {
  std::set<Term> terms = {Term::Variable("x"), Term::Constant("x"),
                          Term::Null(), Term::Variable("a")};
  EXPECT_EQ(terms.size(), 4u);
}

TEST(TermTest, HashDistinguishesKinds) {
  std::unordered_set<Term, TermHash> terms;
  terms.insert(Term::Variable("x"));
  terms.insert(Term::Constant("x"));
  terms.insert(Term::Variable("x"));  // duplicate
  EXPECT_EQ(terms.size(), 2u);
}

}  // namespace
}  // namespace ucqn
