// Concurrent-disjunct behaviour of the operator-DAG executor (labelled
// `concurrency` + `operator`, so the tsan preset runs it): disjunct
// chains racing within one execution produce answers identical to the
// serial replay at every concurrency and morsel size, racing executions
// share one SharedCacheStore with exactly one physical call per distinct
// key, and a SimulatedClock charges overlapped rounds max-over-lanes —
// the simulated wall-clock win the bench measures.

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "ast/parser.h"
#include "eval/executor.h"
#include "runtime/fault_injection.h"
#include "runtime/shared_cache.h"

namespace ucqn {
namespace {

ExecutionOptions DagOptions(std::size_t disjunct_concurrency) {
  ExecutionOptions options;
  options.batch = true;
  options.dictionary = true;
  options.dag = true;
  options.disjunct_concurrency = disjunct_concurrency;
  options.runtime.metering = true;  // force a stack
  return options;
}

// Three executable disjuncts with overlapping subgoals (all three probe
// S), so racing chains actually contend on the same cache keys.
class OperatorDagConcurrencyTest : public ::testing::Test {
 protected:
  OperatorDagConcurrencyTest() {
    catalog_ = Catalog::MustParse("A/2: oo\nB/2: oo\nT/2: io\nS/1: i\n");
    db_ = Database::MustParseFacts(R"(
      A("a1", "k1").
      A("a2", "k2").
      B("b1", "k1").
      B("b2", "k3").
      T("k1", "t1").
      T("k2", "t2").
      T("k3", "t3").
      S("k2").
    )");
    query_ = MustParseUnionQuery(R"(
      Q(x, w) :- A(x, z), T(z, w), not S(z).
      Q(x, w) :- B(x, z), T(z, w), not S(z).
      Q(x, w) :- A(x, z), T(z, w), S(z).
    )");
  }

  Catalog catalog_;
  Database db_;
  UnionQuery query_;
};

TEST_F(OperatorDagConcurrencyTest, RacingDisjunctsMatchTheSerialReplay) {
  // Serial replay first: disjunct_concurrency=1 drives each chain to
  // completion in disjunct order — the sequential-union oracle.
  DatabaseSource serial_backend(&db_, &catalog_);
  ExecutionResult serial =
      Execute(query_, catalog_, &serial_backend, DagOptions(1));
  ASSERT_TRUE(serial.ok) << serial.error;
  ASSERT_EQ(serial.tuples.size(), 4u);  // a1/b1->t1, b2->t3, a2->t2

  for (std::size_t concurrency :
       {std::size_t{2}, std::size_t{3}, std::size_t{8}}) {
    SCOPED_TRACE("disjunct_concurrency=" + std::to_string(concurrency));
    DatabaseSource backend(&db_, &catalog_);
    ExecutionResult racing =
        Execute(query_, catalog_, &backend, DagOptions(concurrency));
    ASSERT_TRUE(racing.ok) << racing.error;
    // Concurrency only changes transport scheduling, never the answers.
    EXPECT_EQ(racing.tuples, serial.tuples);
    EXPECT_EQ(racing.runtime.disjuncts_executed, 3u);
  }
}

TEST_F(OperatorDagConcurrencyTest, MorselSplittingRacesStayIdentical) {
  DatabaseSource serial_backend(&db_, &catalog_);
  ExecutionResult serial =
      Execute(query_, catalog_, &serial_backend, DagOptions(1));
  ASSERT_TRUE(serial.ok) << serial.error;

  for (std::size_t morsel_rows : {std::size_t{1}, std::size_t{2}}) {
    SCOPED_TRACE("morsel_rows=" + std::to_string(morsel_rows));
    DatabaseSource backend(&db_, &catalog_);
    ExecutionOptions options = DagOptions(3);
    options.morsel_rows = morsel_rows;
    ExecutionResult split = Execute(query_, catalog_, &backend, options);
    ASSERT_TRUE(split.ok) << split.error;
    EXPECT_EQ(split.tuples, serial.tuples);
    // Single-row morsels genuinely split the two-row scan frontiers, so
    // strictly more morsels are staged; larger chunks never stage fewer.
    if (morsel_rows == 1) {
      EXPECT_GT(split.runtime.morsels, serial.runtime.morsels);
    } else {
      EXPECT_GE(split.runtime.morsels, serial.runtime.morsels);
    }
  }
}

TEST_F(OperatorDagConcurrencyTest, RacingDisjunctsShareOneCache) {
  // With a call cache on the stack, the three chains' overlapping probes
  // (every z flows into T and S) must coalesce identically whether the
  // chains run serially or race: same physical calls, same answers.
  std::uint64_t serial_calls = 0;
  std::set<Tuple> serial_tuples;
  for (std::size_t concurrency : {std::size_t{1}, std::size_t{3}}) {
    SCOPED_TRACE("disjunct_concurrency=" + std::to_string(concurrency));
    DatabaseSource backend(&db_, &catalog_);
    ExecutionOptions options = DagOptions(concurrency);
    options.runtime.cache = true;
    ExecutionResult result = Execute(query_, catalog_, &backend, options);
    ASSERT_TRUE(result.ok) << result.error;
    if (concurrency == 1) {
      serial_calls = result.runtime.source_calls;
      serial_tuples = result.tuples;
    } else {
      EXPECT_EQ(result.tuples, serial_tuples);
      // Racing reorders who misses first, never how many distinct keys
      // exist: the cache serves the same coalesced call set.
      EXPECT_EQ(result.runtime.source_calls, serial_calls);
    }
  }
}

TEST_F(OperatorDagConcurrencyTest, ExecutionsRaceOneStoreExactly) {
  // Two threads, each executing the union with racing disjuncts through
  // its own stack over one process-wide SharedCacheStore. Answers match
  // the solo baseline (no torn tuples) and every distinct key reaches
  // the backend exactly once (single-flight + reuse) — the DAG driver
  // composes with the store's concurrency protocol unchanged.
  DatabaseSource baseline_backend(&db_, &catalog_);
  SharedCacheStore baseline_store;
  ExecutionOptions baseline_options = DagOptions(3);
  baseline_options.runtime.shared_cache = &baseline_store;
  ExecutionResult baseline =
      Execute(query_, catalog_, &baseline_backend, baseline_options);
  ASSERT_TRUE(baseline.ok) << baseline.error;
  const std::uint64_t distinct_keys = baseline_backend.stats().calls;

  DatabaseSource backend(&db_, &catalog_);
  SharedCacheStore store;
  ExecutionResult r1;
  ExecutionResult r2;
  std::thread t1([&] {
    ExecutionOptions options = DagOptions(3);
    options.runtime.shared_cache = &store;
    r1 = Execute(query_, catalog_, &backend, options);
  });
  std::thread t2([&] {
    ExecutionOptions options = DagOptions(3);
    options.runtime.shared_cache = &store;
    r2 = Execute(query_, catalog_, &backend, options);
  });
  t1.join();
  t2.join();

  ASSERT_TRUE(r1.ok) << r1.error;
  ASSERT_TRUE(r2.ok) << r2.error;
  EXPECT_EQ(r1.tuples, baseline.tuples);
  EXPECT_EQ(r2.tuples, baseline.tuples);
  EXPECT_EQ(backend.stats().calls, distinct_keys);
}

TEST_F(OperatorDagConcurrencyTest, OverlappedRoundsChargeMaxOverLanes) {
  // The wall-clock model: with per-call latency on a SimulatedClock,
  // racing disjuncts resolve each round inside one overlap bracket, so
  // the round costs its slowest lane instead of the sum of all lanes.
  // This is the ≥1.5× simulated improvement the bench records.
  FaultPlan plan;
  plan.latency_micros = 1000;

  std::uint64_t serial_elapsed = 0;
  std::set<Tuple> serial_tuples;
  for (std::size_t concurrency : {std::size_t{1}, std::size_t{3}}) {
    SCOPED_TRACE("disjunct_concurrency=" + std::to_string(concurrency));
    SimulatedClock clock;
    DatabaseSource backend(&db_, &catalog_);
    FaultInjectingSource slow(&backend, plan, &clock);
    ExecutionOptions options = DagOptions(concurrency);
    options.runtime.clock = &clock;
    ExecutionResult result = Execute(query_, catalog_, &slow, options);
    ASSERT_TRUE(result.ok) << result.error;
    if (concurrency == 1) {
      serial_elapsed = clock.NowMicros();
      serial_tuples = result.tuples;
      EXPECT_GT(serial_elapsed, 0u);
    } else {
      EXPECT_EQ(result.tuples, serial_tuples);
      // Three chains overlapping ≈ 3×; require at least 2× so the pin
      // survives small schedule shifts without going flaky.
      EXPECT_LE(clock.NowMicros() * 2, serial_elapsed);
    }
  }
}

}  // namespace
}  // namespace ucqn
