#include "runtime/metered_source.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "ast/parser.h"
#include "runtime/fault_injection.h"

namespace ucqn {
namespace {

TEST(LatencyHistogramTest, BucketsArePowersOfTwo) {
  LatencyHistogram h;
  h.Record(0);    // bucket 0
  h.Record(1);    // bucket 0
  h.Record(2);    // bucket 1
  h.Record(3);    // bucket 1
  h.Record(4);    // bucket 2
  h.Record(100);  // bucket 6: [64, 128)
  EXPECT_EQ(h.count(), 6u);
  EXPECT_EQ(h.buckets()[0], 2u);
  EXPECT_EQ(h.buckets()[1], 2u);
  EXPECT_EQ(h.buckets()[2], 1u);
  EXPECT_EQ(h.buckets()[6], 1u);
  EXPECT_EQ(h.sum_micros(), 110u);
  EXPECT_EQ(h.min_micros(), 0u);
  EXPECT_EQ(h.max_micros(), 100u);
}

TEST(LatencyHistogramTest, PercentileUpperBounds) {
  LatencyHistogram h;
  for (int i = 0; i < 99; ++i) h.Record(10);  // bucket 3: [8, 16)
  h.Record(1000);                             // bucket 9: [512, 1024)
  // Inclusive upper bound of the bucket holding the percentile sample.
  EXPECT_EQ(h.PercentileUpperBoundMicros(0.50), 15u);
  EXPECT_EQ(h.PercentileUpperBoundMicros(0.99), 15u);
  EXPECT_EQ(h.PercentileUpperBoundMicros(1.0), 1023u);
}

TEST(LatencyHistogramTest, EmptyHistogramIsSafe) {
  LatencyHistogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.mean_micros(), 0.0);
  EXPECT_EQ(h.min_micros(), 0u);
  EXPECT_EQ(h.PercentileUpperBoundMicros(0.5), 0u);
  EXPECT_NE(h.ToString().find("n=0"), std::string::npos);
}

class MeteredSourceTest : public ::testing::Test {
 protected:
  MeteredSourceTest() {
    catalog_ = Catalog::MustParse("R/2: oo io\nS/1: o\n");
    db_ = Database::MustParseFacts(R"(
      R("a", "b").
      R("c", "d").
      S("b").
    )");
  }

  Catalog catalog_;
  Database db_;
};

TEST_F(MeteredSourceTest, CountsCallsAndTuplesPerRelation) {
  DatabaseSource backend(&db_, &catalog_);
  MeteredSource metered(&backend);
  metered.FetchOrDie("R", AccessPattern::MustParse("oo"),
                     {std::nullopt, std::nullopt});
  metered.FetchOrDie("R", AccessPattern::MustParse("io"),
                     {Term::Constant("a"), std::nullopt});
  metered.FetchOrDie("S", AccessPattern::MustParse("o"), {std::nullopt});
  EXPECT_EQ(metered.totals().calls, 3u);
  EXPECT_EQ(metered.totals().tuples, 4u);
  EXPECT_EQ(metered.totals().errors, 0u);
  ASSERT_EQ(metered.per_relation().size(), 2u);
  EXPECT_EQ(metered.per_relation().at("R").calls, 2u);
  EXPECT_EQ(metered.per_relation().at("R").tuples, 3u);
  EXPECT_EQ(metered.per_relation().at("S").calls, 1u);
  EXPECT_EQ(metered.per_relation().at("S").tuples, 1u);
}

TEST_F(MeteredSourceTest, CountsErrorsWithoutLosingThem) {
  DatabaseSource backend(&db_, &catalog_);
  FaultPlan faults;
  faults.fail_first_calls = 1;
  FaultInjectingSource flaky(&backend, faults);
  MeteredSource metered(&flaky);
  FetchResult failed =
      metered.Fetch("S", AccessPattern::MustParse("o"), {std::nullopt});
  EXPECT_FALSE(failed.ok());  // the failure passes through untouched
  FetchResult ok =
      metered.Fetch("S", AccessPattern::MustParse("o"), {std::nullopt});
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(metered.totals().calls, 2u);
  EXPECT_EQ(metered.totals().errors, 1u);
  EXPECT_EQ(metered.per_relation().at("S").errors, 1u);
}

TEST_F(MeteredSourceTest, RecordsLatencyFromTheClock) {
  DatabaseSource backend(&db_, &catalog_);
  FaultPlan faults;
  faults.latency_micros = 100;
  SimulatedClock clock;
  FaultInjectingSource slow(&backend, faults, &clock);
  MeteredSource metered(&slow, &clock);
  metered.FetchOrDie("S", AccessPattern::MustParse("o"), {std::nullopt});
  metered.FetchOrDie("S", AccessPattern::MustParse("o"), {std::nullopt});
  const LatencyHistogram& latency = metered.per_relation().at("S").latency;
  EXPECT_EQ(latency.count(), 2u);
  EXPECT_EQ(latency.sum_micros(), 200u);
  EXPECT_EQ(latency.min_micros(), 100u);
  EXPECT_EQ(latency.max_micros(), 100u);
}

TEST_F(MeteredSourceTest, TextExportListsRelationsAndTotals) {
  DatabaseSource backend(&db_, &catalog_);
  MeteredSource metered(&backend);
  metered.FetchOrDie("R", AccessPattern::MustParse("oo"),
                     {std::nullopt, std::nullopt});
  metered.FetchOrDie("S", AccessPattern::MustParse("o"), {std::nullopt});
  const std::string text = metered.ToText();
  EXPECT_NE(text.find("R"), std::string::npos);
  EXPECT_NE(text.find("S"), std::string::npos);
  EXPECT_NE(text.find("TOTAL"), std::string::npos);
}

TEST_F(MeteredSourceTest, JsonExportIsWellFormedEnoughToGrep) {
  DatabaseSource backend(&db_, &catalog_);
  SimulatedClock clock;
  FaultPlan faults;
  faults.latency_micros = 64;
  FaultInjectingSource slow(&backend, faults, &clock);
  MeteredSource metered(&slow, &clock);
  metered.FetchOrDie("S", AccessPattern::MustParse("o"), {std::nullopt});
  const std::string json = metered.ToJson();
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  EXPECT_NE(json.find("\"relations\""), std::string::npos);
  EXPECT_NE(json.find("\"S\""), std::string::npos);
  EXPECT_NE(json.find("\"calls\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"latency_us\""), std::string::npos);
  // Braces balance — cheap structural sanity without a JSON parser.
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(MeteredSourceTest, ResetClearsEverything) {
  DatabaseSource backend(&db_, &catalog_);
  MeteredSource metered(&backend);
  metered.FetchOrDie("S", AccessPattern::MustParse("o"), {std::nullopt});
  metered.Reset();
  EXPECT_EQ(metered.totals().calls, 0u);
  EXPECT_TRUE(metered.per_relation().empty());
}

}  // namespace
}  // namespace ucqn
