#include "mediator/unfold.h"

#include <gtest/gtest.h>

#include <random>

#include "ast/parser.h"
#include "eval/oracle.h"
#include "feasibility/feasible.h"
#include "gen/random_instance.h"
#include "mediator/capabilities.h"

namespace ucqn {
namespace {

TEST(ViewRegistryTest, DefineAndFind) {
  ViewRegistry views = ViewRegistry::MustParse(R"(
    V(x) :- R(x), S(x).
    V(x) :- T(x).
    W(x, y) :- R(x), R(y).
  )");
  EXPECT_EQ(views.size(), 2u);
  ASSERT_TRUE(views.IsView("V"));
  EXPECT_EQ(views.Find("V")->size(), 2u);
  EXPECT_TRUE(views.IsView("W"));
  EXPECT_FALSE(views.IsView("R"));
  EXPECT_EQ(views.ViewNames(), (std::vector<std::string>{"V", "W"}));
}

TEST(UnfoldTest, PositiveViewExpandsToUnion) {
  ViewRegistry views = ViewRegistry::MustParse(R"(
    V(x) :- R(x), S(x).
    V(x) :- T(x).
  )");
  UnionQuery q = MustParseUnionQuery("Q(a) :- V(a), U(a).");
  UnfoldResult result = Unfold(q, views);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.query.size(), 2u);
  EXPECT_EQ(result.expansions, 1u);
  for (const ConjunctiveQuery& d : result.query.disjuncts()) {
    EXPECT_FALSE(d.RelationNames().count("V"));
    EXPECT_TRUE(d.RelationNames().count("U"));
  }
}

TEST(UnfoldTest, ExistentialsGetFreshNames) {
  ViewRegistry views = ViewRegistry::MustParse("V(x) :- E(x, w).");
  // The client query also uses w; the view's w must not capture it.
  UnionQuery q = MustParseUnionQuery("Q(w) :- V(w), M(w).");
  UnfoldResult result = Unfold(q, views);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.query.size(), 1u);
  const ConjunctiveQuery& d = result.query.disjuncts()[0];
  // E's second argument is a fresh variable, not the client's w.
  const Literal* e = nullptr;
  for (const Literal& l : d.body()) {
    if (l.relation() == "E") e = &l;
  }
  ASSERT_NE(e, nullptr);
  EXPECT_EQ(e->args()[0], Term::Variable("w"));
  EXPECT_NE(e->args()[1], Term::Variable("w"));
}

TEST(UnfoldTest, RepeatedViewUsesStayDisjoint) {
  ViewRegistry views = ViewRegistry::MustParse("V(x) :- E(x, w).");
  UnionQuery q = MustParseUnionQuery("Q(a, b) :- V(a), V(b).");
  UnfoldResult result = Unfold(q, views);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.query.size(), 1u);
  const ConjunctiveQuery& d = result.query.disjuncts()[0];
  ASSERT_EQ(d.body().size(), 2u);
  // The two expansions use distinct existential variables.
  EXPECT_NE(d.body()[0].args()[1], d.body()[1].args()[1]);
}

TEST(UnfoldTest, NestedViewsResolveRecursively) {
  ViewRegistry views = ViewRegistry::MustParse(R"(
    Inner(x) :- R(x).
    Outer(x) :- Inner(x), S(x).
  )");
  UnfoldResult result =
      Unfold(MustParseUnionQuery("Q(a) :- Outer(a)."), views);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.query.size(), 1u);
  EXPECT_EQ(result.query.disjuncts()[0].RelationNames(),
            (std::set<std::string>{"R", "S"}));
  EXPECT_EQ(result.expansions, 2u);
}

TEST(UnfoldTest, ConstantsInViewHeadsSelect) {
  ViewRegistry views = ViewRegistry::MustParse(R"(
    V("a", y) :- R(y).
    V("b", y) :- S(y).
  )");
  // Calling with the constant "a" keeps only the matching rule.
  UnfoldResult result =
      Unfold(MustParseUnionQuery("Q(y) :- V(\"a\", y)."), views);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.query.size(), 1u);
  EXPECT_TRUE(result.query.disjuncts()[0].RelationNames().count("R"));
  // Calling with a variable keeps both, binding it per-branch.
  UnfoldResult both =
      Unfold(MustParseUnionQuery("Q(v, y) :- V(v, y), M(v)."), views);
  ASSERT_TRUE(both.ok);
  EXPECT_EQ(both.query.size(), 2u);
  // The head variable v resolves to the respective constant.
  for (const ConjunctiveQuery& d : both.query.disjuncts()) {
    EXPECT_TRUE(d.head_terms()[0].IsConstant());
  }
}

TEST(UnfoldTest, NegatedSingleRuleViewPushesNegation) {
  ViewRegistry views = ViewRegistry::MustParse("V(x, y) :- R(x), S(y).");
  UnfoldResult result = Unfold(
      MustParseUnionQuery("Q(a, b) :- T(a, b), not V(a, b)."), views);
  ASSERT_TRUE(result.ok) << result.error;
  // ¬(R(a) ∧ S(b)) = ¬R(a) ∨ ¬S(b): two disjuncts.
  ASSERT_EQ(result.query.size(), 2u);
  for (const ConjunctiveQuery& d : result.query.disjuncts()) {
    EXPECT_EQ(d.NegativeBody().size(), 1u);
  }
}

TEST(UnfoldTest, NegatedUnionViewTakesProduct) {
  ViewRegistry views = ViewRegistry::MustParse(R"(
    V(x) :- R(x), S(x).
    V(x) :- T(x).
  )");
  UnfoldResult result =
      Unfold(MustParseUnionQuery("Q(a) :- U(a), not V(a)."), views);
  ASSERT_TRUE(result.ok) << result.error;
  // ¬V = (¬R ∨ ¬S) ∧ ¬T: product = 2 disjuncts, each with ¬T.
  ASSERT_EQ(result.query.size(), 2u);
  for (const ConjunctiveQuery& d : result.query.disjuncts()) {
    EXPECT_EQ(d.NegativeBody().size(), 2u);
    EXPECT_TRUE(d.NegativeBodyContains(
        Atom("T", {Term::Variable("a")})));
  }
}

TEST(UnfoldTest, NegatedViewOverNestedViewsResolves) {
  // ¬Outer pushes negation onto Inner, which is itself a view; the
  // resulting ¬Inner(a) then unfolds again.
  ViewRegistry views = ViewRegistry::MustParse(R"(
    Inner(x) :- R(x).
    Outer(x) :- Inner(x).
  )");
  UnfoldResult result =
      Unfold(MustParseUnionQuery("Q(a) :- S(a), not Outer(a)."), views);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.query.size(), 1u);
  const ConjunctiveQuery& d = result.query.disjuncts()[0];
  ASSERT_EQ(d.body().size(), 2u);
  EXPECT_TRUE(d.NegativeBodyContains(Atom("R", {Term::Variable("a")})));
}

TEST(UnfoldTest, NegatedViewWithExistentialRejected) {
  ViewRegistry views = ViewRegistry::MustParse("V(x) :- E(x, w).");
  UnfoldResult result =
      Unfold(MustParseUnionQuery("Q(a) :- R(a), not V(a)."), views);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("existential"), std::string::npos);
}

TEST(UnfoldTest, NegatedViewWithNegationRejected) {
  ViewRegistry views = ViewRegistry::MustParse("V(x) :- R(x), not S(x).");
  UnfoldResult result =
      Unfold(MustParseUnionQuery("Q(a) :- R(a), not V(a)."), views);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("negation"), std::string::npos);
}

TEST(UnfoldTest, NegatedViewWithRepeatedHeadRejected) {
  ViewRegistry views = ViewRegistry::MustParse("V(x, x) :- R(x).");
  UnfoldResult result =
      Unfold(MustParseUnionQuery("Q(a, b) :- T(a, b), not V(a, b)."), views);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("distinct variables"), std::string::npos);
}

TEST(UnfoldTest, DisjunctBlowupGuard) {
  ViewRegistry views = ViewRegistry::MustParse(R"(
    V(x) :- A(x).
    V(x) :- B(x).
  )");
  // Each V literal doubles the union: 2^12 exceeds the configured cap.
  std::string body = "V(a)";
  for (int i = 1; i < 12; ++i) body += ", V(a)";
  UnfoldOptions options;
  options.max_disjuncts = 512;
  UnfoldResult result =
      Unfold(MustParseUnionQuery("Q(a) :- " + body + "."), views, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("max_disjuncts"), std::string::npos);
}

TEST(UnfoldTest, ArityMismatchIsAnError) {
  ViewRegistry views = ViewRegistry::MustParse("V(x) :- R(x).");
  UnfoldResult result = Unfold(MustParseUnionQuery("Q(a) :- V(a, a)."), views);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("arity"), std::string::npos);
}

// Semantics check: unfolding preserves answers. Views are materialized by
// evaluating their definitions; the client query over the materialized
// views must match the unfolded query over the sources.
TEST(UnfoldTest, UnfoldingPreservesSemantics) {
  ViewRegistry views = ViewRegistry::MustParse(R"(
    Good(x) :- R(x, y), S(y).
    Good(x) :- T(x).
    Flag(x) :- S(x).
  )");
  UnionQuery client = MustParseUnionQuery(
      "Q(a) :- Good(a), not Flag(a).");
  UnfoldResult unfolded = Unfold(client, views);
  ASSERT_TRUE(unfolded.ok) << unfolded.error;

  std::mt19937 rng(5);
  Catalog catalog = Catalog::MustParse("R/2: oo\nS/1: o\nT/1: o\n");
  for (int trial = 0; trial < 10; ++trial) {
    RandomInstanceOptions options;
    options.domain_size = 4;
    options.tuples_per_relation = 8;
    Database sources = RandomDatabase(&rng, catalog, options);
    // Materialize the views on top of the sources.
    MaterializationResult materialized = MaterializeViews(views, sources);
    ASSERT_TRUE(materialized.ok) << materialized.error;
    EXPECT_EQ(OracleEvaluate(unfolded.query, sources),
              OracleEvaluate(client, materialized.database))
        << "trial " << trial;
  }
}

// The full mediator pipeline: unfold, then run the standard feasibility
// machinery on the result.
TEST(UnfoldTest, UnfoldedPlanFeedsFeasibility) {
  ViewRegistry views = ViewRegistry::MustParse(R"(
    Books(i, a, t) :- B(i, a, t).
    InCatalog(i, a) :- C(i, a).
  )");
  Catalog catalog = Catalog::MustParse(R"(
    relation B/3: ioo oio
    relation C/2: oo
    relation L/1: o
  )");
  UnionQuery client = MustParseUnionQuery(
      "Q(i, a, t) :- Books(i, a, t), InCatalog(i, a), not L(i).");
  UnfoldResult unfolded = Unfold(client, views);
  ASSERT_TRUE(unfolded.ok);
  FeasibleResult feasible = Feasible(unfolded.query, catalog);
  EXPECT_TRUE(feasible.feasible);  // Example 1 in disguise
}

}  // namespace
}  // namespace ucqn
