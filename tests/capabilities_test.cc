#include "mediator/capabilities.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "feasibility/feasible.h"

namespace ucqn {
namespace {

TEST(AnalyzeViewStackTest, SingleLayer) {
  Catalog sources = Catalog::MustParse("Image/2: io\nSubjects/1: o\n");
  ViewRegistry views = ViewRegistry::MustParse(R"(
    V(s, i) :- Image(s, i).
    AllSubjects(s) :- Subjects(s).
  )");
  ViewStackAnalysis analysis = AnalyzeViewStack(views, sources);
  ASSERT_TRUE(analysis.ok) << analysis.error;
  ASSERT_EQ(analysis.capabilities.size(), 2u);

  std::map<std::string, ViewCapability> by_name;
  for (const ViewCapability& c : analysis.capabilities) by_name[c.view] = c;

  ASSERT_EQ(by_name["V"].minimal_patterns.size(), 1u);
  EXPECT_EQ(by_name["V"].minimal_patterns[0].word(), "io");
  EXPECT_FALSE(by_name["V"].feasible_outright);

  ASSERT_EQ(by_name["AllSubjects"].minimal_patterns.size(), 1u);
  EXPECT_EQ(by_name["AllSubjects"].minimal_patterns[0].word(), "o");
  EXPECT_TRUE(by_name["AllSubjects"].feasible_outright);

  // The exported catalog carries the derived patterns.
  EXPECT_TRUE(analysis.exported_catalog.Find("V")->HasPattern(
      AccessPattern::MustParse("io")));
}

TEST(AnalyzeViewStackTest, CapabilitiesPropagateUpward) {
  // Upper is defined over V (which needs its subject bound) and Subjects
  // (which can seed it) — so Upper is feasible outright even though V is
  // not. Bottom-up propagation is what makes this visible.
  Catalog sources = Catalog::MustParse("Image/2: io\nSubjects/1: o\n");
  ViewRegistry views = ViewRegistry::MustParse(R"(
    V(s, i) :- Image(s, i).
    Upper(s, i) :- Subjects(s), V(s, i).
  )");
  ViewStackAnalysis analysis = AnalyzeViewStack(views, sources);
  ASSERT_TRUE(analysis.ok) << analysis.error;
  std::map<std::string, ViewCapability> by_name;
  for (const ViewCapability& c : analysis.capabilities) by_name[c.view] = c;
  EXPECT_TRUE(by_name["Upper"].feasible_outright);
  // V is analyzed before Upper (dependency order).
  EXPECT_EQ(analysis.capabilities[0].view, "V");

  // A client can plan against the exported catalog directly.
  EXPECT_TRUE(IsFeasible(MustParseUnionQuery("Q(s, i) :- Upper(s, i)."),
                         analysis.exported_catalog));
  EXPECT_FALSE(IsFeasible(MustParseUnionQuery("Q(s, i) :- V(s, i)."),
                          analysis.exported_catalog));
}

TEST(AnalyzeViewStackTest, UnusableViewExportsNoPatterns) {
  Catalog sources = Catalog::MustParse("R/2: oo\nB/1: i\n");
  ViewRegistry views = ViewRegistry::MustParse("V(x) :- R(x, y), B(w).");
  ViewStackAnalysis analysis = AnalyzeViewStack(views, sources);
  ASSERT_TRUE(analysis.ok);
  EXPECT_TRUE(analysis.capabilities[0].minimal_patterns.empty());
  EXPECT_TRUE(analysis.exported_catalog.Find("V")->patterns().empty());
}

TEST(AnalyzeViewStackTest, UndeclaredRelationFails) {
  Catalog sources = Catalog::MustParse("R/1: o\n");
  ViewRegistry views = ViewRegistry::MustParse("V(x) :- Mystery(x).");
  ViewStackAnalysis analysis = AnalyzeViewStack(views, sources);
  EXPECT_FALSE(analysis.ok);
  EXPECT_NE(analysis.error.find("undeclared"), std::string::npos);
}

TEST(AnalyzeViewStackTest, RecursionFails) {
  Catalog sources = Catalog::MustParse("R/1: o\n");
  ViewRegistry self = ViewRegistry::MustParse("V(x) :- V(x).");
  EXPECT_FALSE(AnalyzeViewStack(self, sources).ok);
  ViewRegistry mutual = ViewRegistry::MustParse(R"(
    V(x) :- W(x).
    W(x) :- V(x).
  )");
  ViewStackAnalysis analysis = AnalyzeViewStack(mutual, sources);
  EXPECT_FALSE(analysis.ok);
  EXPECT_NE(analysis.error.find("cyclic"), std::string::npos);
}

TEST(MaterializeViewsTest, BottomUpLayers) {
  ViewRegistry views = ViewRegistry::MustParse(R"(
    Low(x) :- R(x).
    High(x) :- Low(x), S(x).
  )");
  Database base = Database::MustParseFacts(R"(
    R("a").
    R("b").
    S("a").
  )");
  MaterializationResult result = MaterializeViews(views, base);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.database.TupleCount("Low"), 2u);
  EXPECT_EQ(result.database.TupleCount("High"), 1u);
  EXPECT_TRUE(result.database.Contains("High", {Term::Constant("a")}));
  // The base relations survive untouched.
  EXPECT_EQ(result.database.TupleCount("R"), 2u);
}

TEST(MaterializeViewsTest, NegationThroughLayers) {
  ViewRegistry views = ViewRegistry::MustParse(R"(
    Bad(x) :- Flagged(x).
    Good(x) :- R(x), not Bad(x).
  )");
  Database base = Database::MustParseFacts(R"(
    R("a").
    R("b").
    Flagged("b").
  )");
  MaterializationResult result = MaterializeViews(views, base);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.database.Contains("Good", {Term::Constant("a")}));
  EXPECT_FALSE(result.database.Contains("Good", {Term::Constant("b")}));
}

TEST(MaterializeViewsTest, CyclesFail) {
  ViewRegistry views = ViewRegistry::MustParse(R"(
    V(x) :- W(x).
    W(x) :- V(x).
  )");
  MaterializationResult result = MaterializeViews(views, Database());
  EXPECT_FALSE(result.ok);
}

TEST(AnalyzeViewStackTest, ThreeLayerStack) {
  Catalog sources = Catalog::MustParse("KV/2: io\nKeys/1: o\n");
  ViewRegistry views = ViewRegistry::MustParse(R"(
    Lookup(k, v) :- KV(k, v).
    Joined(k, v) :- Keys(k), Lookup(k, v).
    Top(v) :- Joined(k, v).
  )");
  ViewStackAnalysis analysis = AnalyzeViewStack(views, sources);
  ASSERT_TRUE(analysis.ok) << analysis.error;
  std::map<std::string, ViewCapability> by_name;
  for (const ViewCapability& c : analysis.capabilities) by_name[c.view] = c;
  EXPECT_FALSE(by_name["Lookup"].feasible_outright);
  EXPECT_TRUE(by_name["Joined"].feasible_outright);
  EXPECT_TRUE(by_name["Top"].feasible_outright);
}

}  // namespace
}  // namespace ucqn
