// The cost subsystem: StaticCostModel's bit-compatibility with the
// legacy pattern/ordering heuristics (including tie-breaks), the
// AdaptiveCostModel scoring formula, and the pattern/order flips it
// produces when the stats say a service is slow.

#include "cost/cost_model.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "cost/stats_catalog.h"
#include "eval/planner.h"
#include "schema/adornment.h"
#include "schema/catalog.h"

namespace ucqn {
namespace {

Literal BodyLiteral(const std::string& rule, std::size_t index = 0) {
  return MustParseRule(rule).body()[index];
}

// --- StaticCostModel vs. the legacy heuristics ----------------------------

TEST(StaticCostModelTest, MatchesLegacyChoosePatternUnderBothPreferences) {
  Catalog catalog = Catalog::MustParse("R/3: iio ioo ooo\nN/1: i\n");
  const Literal r = BodyLiteral("Q(x, y, z) :- R(x, y, z).");
  for (PatternPreference preference :
       {PatternPreference::kMostInputs, PatternPreference::kFewestInputs}) {
    StaticCostModel model(preference);
    for (const BoundVariables& bound :
         {BoundVariables{}, BoundVariables{"x"}, BoundVariables{"x", "y"}}) {
      std::optional<AccessPattern> legacy =
          ChoosePattern(catalog, r, bound, preference);
      std::optional<AccessPattern> modeled =
          ChoosePattern(catalog, r, bound, model);
      ASSERT_EQ(legacy.has_value(), modeled.has_value());
      if (legacy.has_value()) EXPECT_EQ(legacy->word(), modeled->word());
    }
  }
  // Spot-check the concrete winners, not just agreement.
  BoundVariables xy{"x", "y"};
  EXPECT_EQ(ChoosePattern(catalog, r, xy,
                          StaticCostModel(PatternPreference::kMostInputs))
                ->word(),
            "iio");
  EXPECT_EQ(ChoosePattern(catalog, r, xy,
                          StaticCostModel(PatternPreference::kFewestInputs))
                ->word(),
            "ooo");
}

TEST(StaticCostModelTest, PreservesTheNullAndNegativeRules) {
  Catalog catalog = Catalog::MustParse("R/2: io\nN/1: o\n");
  StaticCostModel model;
  // Undeclared relation.
  EXPECT_FALSE(ChoosePattern(catalog, BodyLiteral("Q(x) :- M(x)."), {}, model)
                   .has_value());
  // Arity mismatch.
  EXPECT_FALSE(ChoosePattern(catalog, BodyLiteral("Q(x) :- R(x)."), {}, model)
                   .has_value());
  // No usable pattern (io needs x bound).
  EXPECT_FALSE(
      ChoosePattern(catalog, BodyLiteral("Q(x, y) :- R(x, y)."), {}, model)
          .has_value());
  // Negative literal with an unbound variable can never be called.
  const Literal negated = BodyLiteral("Q(x) :- not N(x).");
  EXPECT_FALSE(ChoosePattern(catalog, negated, {}, model).has_value());
  BoundVariables x{"x"};
  EXPECT_TRUE(ChoosePattern(catalog, negated, x, model).has_value());
}

// Satellite: two usable patterns with the same input-slot count must
// resolve deterministically — to the first declared — under BOTH
// preferences, for the legacy API and the cost-model API alike.
TEST(StaticCostModelTest, EqualInputCountTieFallsToDeclarationOrder) {
  Catalog io_first = Catalog::MustParse("R/2: io oi\n");
  Catalog oi_first = Catalog::MustParse("R/2: oi io\n");
  const Literal r = BodyLiteral("Q(x, y) :- R(x, y).");
  BoundVariables both{"x", "y"};  // either pattern is usable
  for (PatternPreference preference :
       {PatternPreference::kMostInputs, PatternPreference::kFewestInputs}) {
    SCOPED_TRACE(preference == PatternPreference::kMostInputs ? "most"
                                                              : "fewest");
    EXPECT_EQ(ChoosePattern(io_first, r, both, preference)->word(), "io");
    EXPECT_EQ(ChoosePattern(oi_first, r, both, preference)->word(), "oi");
    StaticCostModel model(preference);
    PatternDecision decision;
    EXPECT_EQ(
        ChoosePattern(io_first, r, both, model, {}, &decision)->word(), "io");
    // Both candidates were usable, scored equal, and the record shows it.
    ASSERT_EQ(decision.candidates.size(), 2u);
    EXPECT_TRUE(decision.candidates[0].usable);
    EXPECT_TRUE(decision.candidates[1].usable);
    EXPECT_DOUBLE_EQ(decision.candidates[0].cost, decision.candidates[1].cost);
    EXPECT_TRUE(decision.candidates[0].chosen);
    EXPECT_FALSE(decision.candidates[1].chosen);
  }
}

// Satellite: the documented fallback for relations absent from the
// estimates. kDefaultFallbackCardinality is THE constant every consumer
// shares; an unknown relation must be priced exactly like a relation
// whose estimate is that value.
TEST(StaticCostModelTest, UnknownRelationUsesDocumentedFallbackCardinality) {
  EXPECT_DOUBLE_EQ(kDefaultFallbackCardinality, 1000.0);
  EXPECT_DOUBLE_EQ(PlannerOptions{}.fallback_cardinality,
                   kDefaultFallbackCardinality);
  EXPECT_DOUBLE_EQ(CardinalityEstimates().Get("Absent"),
                   kDefaultFallbackCardinality);

  StaticCostModel no_estimates;
  const Literal u = BodyLiteral("Q(x, y) :- U(x, y).");
  EXPECT_DOUBLE_EQ(no_estimates.ExpectedFanout(u, {}),
                   kDefaultFallbackCardinality);
  // One bound arg applies one selectivity factor to the fallback.
  BoundVariables x{"x"};
  EXPECT_DOUBLE_EQ(no_estimates.ExpectedFanout(u, x),
                   kDefaultFallbackCardinality * 0.2);
  // And an explicit estimate of exactly the fallback value is
  // indistinguishable from no estimate at all.
  CardinalityEstimates pinned;
  pinned.Set("U", kDefaultFallbackCardinality);
  StaticCostModel with_pinned(PatternPreference::kMostInputs, pinned);
  EXPECT_DOUBLE_EQ(with_pinned.ExpectedFanout(u, x),
                   no_estimates.ExpectedFanout(u, x));
}

// --- AdaptiveCostModel ----------------------------------------------------

class AdaptiveCostModelTest : public ::testing::Test {
 protected:
  // Seed/1 scans into 64 bindings; Lookup/2 offers a keyed probe and a
  // scan over 5000 tuples. Stats describe a fleet where Lookup answered
  // 64 keyed calls with one tuple each.
  AdaptiveCostModelTest() {
    catalog_ = Catalog::MustParse("Seed/1: o\nLookup/2: io oo\n");
    estimates_.Set("Seed", 64.0);
    estimates_.Set("Lookup", 5000.0);
    options_.tuple_cost_micros = 50.0;
  }

  StatsCatalog StatsWithLookupLatency(double p50_micros) {
    StatsCatalog stats;
    RelationStats seed;
    seed.calls = 1;
    seed.tuples = 64;
    seed.p50_latency_micros = 500.0;
    stats.Record("Seed", seed);
    RelationStats lookup;
    lookup.calls = 64;
    lookup.tuples = 64;
    lookup.p50_latency_micros = p50_micros;
    stats.Record("Lookup", lookup);
    return stats;
  }

  Catalog catalog_;
  CardinalityEstimates estimates_;
  AdaptiveCostOptions options_;
  Literal lookup_ = BodyLiteral("Q(x, v) :- Seed(x), Lookup(x, v).", 1);
  BoundVariables x_bound_{"x"};
};

TEST_F(AdaptiveCostModelTest, LatencyComesFromStatsWithConfiguredDefault) {
  StatsCatalog stats = StatsWithLookupLatency(5000.0);
  AdaptiveCostModel model(&stats, estimates_, options_);
  EXPECT_DOUBLE_EQ(model.LatencyMicros("Lookup"), 5000.0);
  EXPECT_DOUBLE_EQ(model.LatencyMicros("Seed"), 500.0);
  // Unobserved relation: the configured default.
  EXPECT_DOUBLE_EQ(model.LatencyMicros("Elsewhere"),
                   options_.default_latency_micros);
  // No stats at all: everything defaults.
  AdaptiveCostModel bare(nullptr, estimates_, options_);
  EXPECT_DOUBLE_EQ(bare.LatencyMicros("Lookup"),
                   options_.default_latency_micros);
}

TEST_F(AdaptiveCostModelTest, PatternCostIsCallsTimesLatencyPlusTuples) {
  StatsCatalog stats = StatsWithLookupLatency(5000.0);
  AdaptiveCostModel model(&stats, estimates_, options_);
  PlanContext context;
  context.live_bindings = 64.0;
  // Keyed probe: 64 calls (one per live binding) x 5000us, plus 64
  // observed tuples (one per call) x 50us.
  EXPECT_DOUBLE_EQ(
      model.PatternCost(lookup_, AccessPattern::MustParse("io"), x_bound_,
                        context),
      64.0 * 5000.0 + 64.0 * 1.0 * 50.0);
  // Scan: the wave dedup collapses 64 identical requests to ONE call,
  // which hauls the whole 5000-tuple relation.
  EXPECT_DOUBLE_EQ(
      model.PatternCost(lookup_, AccessPattern::MustParse("oo"), x_bound_,
                        context),
      1.0 * 5000.0 + 5000.0 * 50.0);
}

TEST_F(AdaptiveCostModelTest, FlipsToScanWhenKeyedProbesAreSlow) {
  // Fast service: 64 keyed probes (32ms of latency) beat hauling 5000
  // tuples; the adaptive choice agrees with the static kMostInputs one.
  StatsCatalog fast = StatsWithLookupLatency(500.0);
  AdaptiveCostModel fast_model(&fast, estimates_, options_);
  PlanContext context;
  context.live_bindings = 64.0;
  EXPECT_EQ(
      ChoosePattern(catalog_, lookup_, x_bound_, fast_model, context)->word(),
      "io");

  // 10x slower service: the same 64 probes now cost 320ms of latency —
  // more than the scan's transfer bill — so the model flips to oo.
  StatsCatalog slow = StatsWithLookupLatency(5000.0);
  AdaptiveCostModel slow_model(&slow, estimates_, options_);
  PatternDecision decision;
  EXPECT_EQ(ChoosePattern(catalog_, lookup_, x_bound_, slow_model, context,
                          &decision)
                ->word(),
            "oo");
  // The rejected candidate is on record with the cost that rejected it.
  ASSERT_EQ(decision.candidates.size(), 2u);
  EXPECT_EQ(decision.candidates[0].pattern.word(), "io");
  EXPECT_TRUE(decision.candidates[0].usable);
  EXPECT_FALSE(decision.candidates[0].chosen);
  EXPECT_GT(decision.candidates[0].cost, decision.candidates[1].cost);
  EXPECT_TRUE(decision.candidates[1].chosen);
  const std::string rendered = decision.ToString();
  EXPECT_NE(rendered.find("io cost="), std::string::npos);
  EXPECT_NE(rendered.find("oo cost="), std::string::npos);
  EXPECT_NE(rendered.find("(chosen)"), std::string::npos);
}

TEST_F(AdaptiveCostModelTest, FewerLiveBindingsKeepTheKeyedProbe) {
  // The flip is binding-count-sensitive: with one live binding even the
  // slow service's single probe beats a full scan.
  StatsCatalog slow = StatsWithLookupLatency(5000.0);
  AdaptiveCostModel model(&slow, estimates_, options_);
  PlanContext one;
  one.live_bindings = 1.0;
  EXPECT_EQ(ChoosePattern(catalog_, lookup_, x_bound_, model, one)->word(),
            "io");
}

TEST(AdaptiveOrderingTest, SchedulesTheFastRelationFirstOnTies) {
  // Two interchangeable scans (same cardinality): the static model ties
  // and keeps body order; the adaptive model sees one service is 10x
  // slower and schedules the fast one first.
  Catalog catalog = Catalog::MustParse("SlowR/1: o\nFastR/1: o\n");
  ConjunctiveQuery q = MustParseRule("Q(x, y) :- SlowR(x), FastR(y).");
  CardinalityEstimates estimates;
  estimates.Set("SlowR", 100.0);
  estimates.Set("FastR", 100.0);

  std::optional<ConjunctiveQuery> static_order =
      OptimizeLiteralOrder(q, catalog, estimates);
  ASSERT_TRUE(static_order.has_value());
  EXPECT_EQ(static_order->body()[0].relation(), "SlowR");  // body order kept

  StatsCatalog stats;
  RelationStats slow;
  slow.calls = 10;
  slow.tuples = 1000;
  slow.p50_latency_micros = 5000.0;
  stats.Record("SlowR", slow);
  RelationStats fast;
  fast.calls = 10;
  fast.tuples = 1000;
  fast.p50_latency_micros = 500.0;
  stats.Record("FastR", fast);
  AdaptiveCostModel model(&stats, estimates);
  std::optional<ConjunctiveQuery> adaptive_order =
      OptimizeLiteralOrder(q, catalog, model);
  ASSERT_TRUE(adaptive_order.has_value());
  EXPECT_EQ(adaptive_order->body()[0].relation(), "FastR");
  EXPECT_EQ(adaptive_order->body()[1].relation(), "SlowR");
}

// --- Observed-fanout feedback (docs/WORKLOADS.md section 5) ---------------

// The loop-closing flip: with no declared estimate, the fallback prices
// L's scan at 1000 tuples and keeps the keyed probe; the observed scan
// fanout (30 tuples in the whole relation) reveals the scan is cheap
// and flips the choice. Equal latencies keep the flip about fanout.
TEST(FanoutFeedbackTest, ObservedScanFanoutFlipsThePatternChoice) {
  Catalog catalog = Catalog::MustParse("L/2: io oo\n");
  StatsCatalog stats;
  RelationStats probe;
  probe.calls = 10;
  probe.tuples = 10;
  probe.p50_latency_micros = 100.0;
  probe.mean_fanout = 1.0;
  probe.fanout_calls = 10;
  stats.Record("L", "io", probe);
  RelationStats scan;
  scan.calls = 2;
  scan.tuples = 60;
  scan.p50_latency_micros = 100.0;
  scan.mean_fanout = 30.0;
  scan.fanout_calls = 2;
  stats.Record("L", "oo", scan);

  Literal lookup = BodyLiteral("Q(x, v) :- L(x, v).");
  BoundVariables x_bound{"x"};
  PlanContext context;
  context.live_bindings = 2.0;

  AdaptiveCostOptions feedback_off;
  feedback_off.use_observed_fanouts = false;
  AdaptiveCostModel fallback(&stats, CardinalityEstimates(), feedback_off);
  // Probe: 2 calls x 100us + 2 observed tuples; scan: 100us + the
  // 1000-tuple fallback. The probe wins by almost an order of magnitude.
  EXPECT_EQ(
      ChoosePattern(catalog, lookup, x_bound, fallback, context)->word(),
      "io");

  AdaptiveCostModel informed(&stats, CardinalityEstimates(),
                             AdaptiveCostOptions{});
  // Same stats, feedback on (the default): the scan hauls 30 observed
  // tuples for one call and wins.
  EXPECT_EQ(
      ChoosePattern(catalog, lookup, x_bound, informed, context)->word(),
      "oo");
}

TEST(FanoutFeedbackTest, ApplyObservedFanoutsFillsOnlyTheGaps) {
  StatsCatalog stats;
  RelationStats scan;
  scan.calls = 2;
  scan.tuples = 96;
  scan.mean_fanout = 48.0;
  scan.fanout_calls = 2;
  stats.Record("R", "oo", scan);
  stats.Record("S", "oo", scan);
  RelationStats probe;
  probe.calls = 4;
  probe.tuples = 8;
  probe.mean_fanout = 2.0;
  probe.fanout_calls = 4;
  stats.Record("T", "io", probe);

  CardinalityEstimates estimates;
  estimates.Set("S", 7.0);
  estimates.ApplyObservedFanouts(stats);

  // Unestimated R picks up the observed scan fanout...
  EXPECT_TRUE(estimates.Has("R"));
  EXPECT_DOUBLE_EQ(estimates.Get("R"), 48.0);
  // ...the explicit estimate for S always wins...
  EXPECT_DOUBLE_EQ(estimates.Get("S"), 7.0);
  // ...and a keyed probe fanout is tuples-per-probe, not a relation
  // size, so it never becomes a cardinality estimate.
  EXPECT_FALSE(estimates.Has("T"));
}

}  // namespace
}  // namespace ucqn
