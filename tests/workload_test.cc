// The workload generator and its versioned file format: seeded
// determinism down to the byte, the parse/serialize round-trip, the
// adversarial shape of the generated schema, and the Zipf sampler the
// replay plans lean on. docs/WORKLOADS.md is the prose companion.

#include "gen/workload.h"

#include <gtest/gtest.h>

#include <map>
#include <random>
#include <set>

#include "ast/parser.h"
#include "feasibility/feasible.h"

namespace ucqn {
namespace {

WorkloadGenOptions SmallOptions(std::uint64_t seed = 11) {
  WorkloadGenOptions options;
  options.seed = seed;
  options.chain_length = 4;
  options.enumerable_relations = 2;
  options.decoy_relations = 3;
  options.domain_size = 12;
  options.tuples_per_relation = 20;
  options.num_queries = 40;
  options.flaky_relations = 1;
  options.spike_period_micros = 10000;
  options.spike_duration_micros = 1000;
  options.spike_extra_micros = 5000;
  return options;
}

TEST(WorkloadGenTest, SameSeedIsByteIdentical) {
  const std::string first = SerializeWorkload(GenerateWorkload(SmallOptions()));
  const std::string second =
      SerializeWorkload(GenerateWorkload(SmallOptions()));
  EXPECT_EQ(first, second);
  // Covers every section at once: schema, facts, fault plan (including
  // the flaky override and the correlated spike), replay plan, queries.
  EXPECT_NE(first.find("[schema]"), std::string::npos);
  EXPECT_NE(first.find("[facts]"), std::string::npos);
  EXPECT_NE(first.find("[faults]"), std::string::npos);
  EXPECT_NE(first.find("[replay]"), std::string::npos);
  EXPECT_NE(first.find("[queries]"), std::string::npos);

  const std::string other =
      SerializeWorkload(GenerateWorkload(SmallOptions(12)));
  EXPECT_NE(first, other);
}

TEST(WorkloadGenTest, ParseRoundTripIsByteIdentical) {
  const std::string text = SerializeWorkload(GenerateWorkload(SmallOptions()));
  std::string error;
  std::optional<WorkloadSpec> parsed = ParseWorkload(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(SerializeWorkload(*parsed), text);
}

TEST(WorkloadGenTest, ParserRejectsMalformedFiles) {
  std::string error;
  EXPECT_FALSE(ParseWorkload("not a workload", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(
      ParseWorkload("# ucqn-workload v99\nseed 1\n", &error).has_value());
  // Truncated mid-section.
  const std::string text = SerializeWorkload(GenerateWorkload(SmallOptions()));
  EXPECT_FALSE(
      ParseWorkload(text.substr(0, text.find("[queries]") + 9), &error)
          .has_value());
}

TEST(WorkloadGenTest, SchemaIsAdversarialByConstruction) {
  const WorkloadSpec spec = GenerateWorkload(SmallOptions());
  // Odd chain links are reachable only through their bound first slot;
  // even links also offer the scan that gives the cost model a choice.
  for (int i = 0; i < 4; ++i) {
    const RelationSchema* link = spec.catalog.Find("C" + std::to_string(i));
    ASSERT_NE(link, nullptr);
    std::set<std::string> words;
    for (const AccessPattern& pattern : link->patterns()) {
      words.insert(pattern.word());
    }
    EXPECT_TRUE(words.count("io")) << "C" << i;
    EXPECT_EQ(words.count("oo"), i % 2 == 0 ? 1u : 0u) << "C" << i;
  }
  // Enumerable relations scan, so negated literals can range over them.
  for (int e = 0; e < 2; ++e) {
    const RelationSchema* domain = spec.catalog.Find("E" + std::to_string(e));
    ASSERT_NE(domain, nullptr);
    EXPECT_EQ(domain->patterns().front().word(), "o");
  }
  // Every template parses and is feasible under the restricted patterns —
  // the generator never emits a query the runtime would refuse.
  ASSERT_EQ(spec.queries.size(), 40u);
  for (const std::string& text : spec.queries) {
    UnionQuery query = MustParseUnionQuery(text);
    EXPECT_TRUE(IsFeasible(query, spec.catalog)) << text;
  }
}

TEST(WorkloadGenTest, FaultPlanCarriesTheConfiguredAdversity) {
  const WorkloadSpec spec = GenerateWorkload(SmallOptions());
  EXPECT_EQ(spec.faults.latency_micros, 200u);
  // slow_relations = 1: the last chain link pays 10x.
  ASSERT_TRUE(spec.faults.relation_latency_micros.count("C3"));
  EXPECT_EQ(spec.faults.relation_latency_micros.at("C3"), 2000u);
  // flaky_relations = 1: the first enumerable relation gets the override.
  ASSERT_TRUE(spec.faults.relation_failure_probability.count("E0"));
  EXPECT_DOUBLE_EQ(spec.faults.relation_failure_probability.at("E0"), 0.05);
  EXPECT_EQ(spec.faults.spike_period_micros, 10000u);
  EXPECT_EQ(spec.faults.spike_extra_micros, 5000u);
}

TEST(WorkloadGenTest, RequestSequenceIsDeterministicAndCapped) {
  WorkloadSpec spec = GenerateWorkload(SmallOptions());
  spec.replay.requests = 500;
  spec.replay.tenants = 3;
  const std::vector<ReplayRequest> first = BuildRequestSequence(spec);
  const std::vector<ReplayRequest> second = BuildRequestSequence(spec);
  ASSERT_EQ(first.size(), 500u);
  for (std::size_t r = 0; r < first.size(); ++r) {
    EXPECT_EQ(first[r].query_index, second[r].query_index);
    EXPECT_EQ(first[r].tenant, second[r].tenant);
    EXPECT_EQ(first[r].tenant, static_cast<int>(r % 3));
    ASSERT_LT(first[r].query_index, spec.queries.size());
  }
  EXPECT_EQ(BuildRequestSequence(spec, 20).size(), 20u);
}

TEST(ZipfSamplerTest, SkewConcentratesOnLowRanks) {
  std::mt19937_64 rng(5);
  ZipfSampler skewed(100, 1.2);
  std::map<std::size_t, int> counts;
  for (int draw = 0; draw < 20000; ++draw) ++counts[skewed.Sample(&rng)];
  // Rank 0 dominates rank 10 dominates rank 90 — monotone in expectation
  // with wide margins at this sample size.
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[10], counts[90]);
  EXPECT_GT(counts[0], 2000);

  // s = 0 is uniform: the head cannot dominate 100-fold.
  ZipfSampler uniform(100, 0.0);
  counts.clear();
  for (int draw = 0; draw < 20000; ++draw) ++counts[uniform.Sample(&rng)];
  EXPECT_LT(counts[0], 600);
  EXPECT_GT(counts[99], 50);
}

TEST(WorkloadGenTest, UpdateRateZeroLeavesV1BytesUnchanged) {
  // The v2 ratchet: with no delta stream the generator must keep emitting
  // byte-identical v1 files, so existing corpora and their digests stand.
  WorkloadGenOptions base = SmallOptions();
  const std::string v1 = SerializeWorkload(GenerateWorkload(base));
  WorkloadGenOptions zero = SmallOptions();
  zero.update_rate = 0.0;
  EXPECT_EQ(SerializeWorkload(GenerateWorkload(zero)), v1);
  EXPECT_NE(v1.find("# ucqn-workload v1"), std::string::npos);
  EXPECT_EQ(v1.find("[deltas]"), std::string::npos);
}

TEST(WorkloadGenTest, DeltaStreamRoundTripsThroughV2) {
  WorkloadGenOptions options = SmallOptions();
  options.update_rate = 0.2;
  const WorkloadSpec spec = GenerateWorkload(options);
  ASSERT_FALSE(spec.deltas.empty());
  EXPECT_EQ(spec.version, 2);
  // Events are pinned to replay request indices and reference declared
  // relations with matching arity; deletes target live tuples by
  // construction (the generator tracks its own working copy).
  for (const WorkloadDeltaEvent& event : spec.deltas) {
    EXPECT_LT(event.at_request, spec.replay.requests);
    const RelationSchema* schema = spec.catalog.Find(event.relation);
    ASSERT_NE(schema, nullptr) << event.relation;
    EXPECT_EQ(event.tuple.size(), schema->arity());
  }

  const std::string text = SerializeWorkload(spec);
  EXPECT_NE(text.find("# ucqn-workload v2"), std::string::npos);
  EXPECT_NE(text.find("[deltas]"), std::string::npos);
  std::string error;
  std::optional<WorkloadSpec> parsed = ParseWorkload(text, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  ASSERT_EQ(parsed->deltas.size(), spec.deltas.size());
  for (std::size_t i = 0; i < spec.deltas.size(); ++i) {
    EXPECT_EQ(parsed->deltas[i].at_request, spec.deltas[i].at_request);
    EXPECT_EQ(parsed->deltas[i].relation, spec.deltas[i].relation);
    EXPECT_EQ(parsed->deltas[i].insert, spec.deltas[i].insert);
    EXPECT_EQ(parsed->deltas[i].tuple, spec.deltas[i].tuple);
  }
  EXPECT_EQ(SerializeWorkload(*parsed), text);

  // The delta stream rides on a separately seeded rng: turning it on
  // must not perturb the schema, instance, or query sections.
  const std::string v1 = SerializeWorkload(GenerateWorkload(SmallOptions()));
  const std::string queries_on = text.substr(text.find("[queries]"));
  const std::string queries_off = v1.substr(v1.find("[queries]"));
  EXPECT_EQ(queries_on, queries_off);
}

TEST(WorkloadGenTest, ParserRejectsMalformedDeltaLines) {
  WorkloadGenOptions options = SmallOptions();
  options.update_rate = 0.2;
  const std::string text = SerializeWorkload(GenerateWorkload(options));
  const std::size_t section = text.find("[deltas]\n");
  ASSERT_NE(section, std::string::npos);
  const std::size_t line = section + std::string("[deltas]\n").size();
  std::string error;

  auto with_line = [&](const std::string& bad) {
    std::string mutated = text;
    mutated.insert(line, bad + "\n");
    return mutated;
  };
  // No @index prefix.
  EXPECT_FALSE(
      ParseWorkload(with_line("+C0(1, 2)."), &error).has_value());
  EXPECT_NE(error.find("[deltas]"), std::string::npos);
  // No sign on the fact.
  EXPECT_FALSE(
      ParseWorkload(with_line("@3 C0(1, 2)."), &error).has_value());
  // Not a fact at all.
  EXPECT_FALSE(
      ParseWorkload(with_line("@3 +garbage"), &error).has_value());
  // Two facts on one line.
  EXPECT_FALSE(
      ParseWorkload(with_line("@3 +C0(1, 2). C0(3, 4)."), &error)
          .has_value());
}

}  // namespace
}  // namespace ucqn
