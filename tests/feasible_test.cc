#include "feasibility/feasible.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "gen/scenarios.h"
#include "schema/adornment.h"

namespace ucqn {
namespace {

TEST(FeasibleTest, OrderableDecidedByPlansEqual) {
  Scenario s = Example1Books();
  FeasibleResult result = Feasible(s.query, s.catalog);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.path, FeasibleDecisionPath::kPlansEqual);
  // No containment work was needed.
  EXPECT_EQ(result.containment_stats.nodes_expanded, 0u);
}

TEST(FeasibleTest, Example3DecidedByContainment) {
  Scenario s = Example3FeasibleNotOrderable();
  FeasibleResult result = Feasible(s.query, s.catalog);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.path, FeasibleDecisionPath::kContainment);
  EXPECT_GT(result.containment_stats.nodes_expanded, 0u);
  // The rewriting (ans(Q)) is executable.
  EXPECT_TRUE(IsExecutable(result.plans.over, s.catalog));
}

TEST(FeasibleTest, Example4InfeasibleViaNullShortCircuit) {
  Scenario s = Example4UnderOver();
  FeasibleResult result = Feasible(s.query, s.catalog);
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.path, FeasibleDecisionPath::kNullInOverestimate);
}

TEST(FeasibleTest, Example9FeasibleCq) {
  Scenario s = Example9CqProcessing();
  FeasibleResult result = Feasible(s.query, s.catalog);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.path, FeasibleDecisionPath::kContainment);
}

TEST(FeasibleTest, Example10FeasibleUcq) {
  Scenario s = Example10UcqProcessing();
  EXPECT_TRUE(IsFeasible(s.query, s.catalog));
}

TEST(FeasibleTest, InfeasibleByContainment) {
  // ans(Q) = R(x) strictly contains Q = R(x), B(y): infeasible, and the
  // verdict needs the containment test (no nulls — y is not a head var).
  Catalog catalog = Catalog::MustParse("R/1: o\nB/1: i\n");
  UnionQuery q = MustParseUnionQuery("Q(x) :- R(x), B(y).");
  FeasibleResult result = Feasible(q, catalog);
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.path, FeasibleDecisionPath::kContainment);
}

TEST(FeasibleTest, UnsatisfiableQueryIsFeasible) {
  // ans(Q) = false, which is executable; plans coincide (both false).
  Catalog catalog = Catalog::MustParse("R/1: o\n");
  UnionQuery q = MustParseUnionQuery("Q(x) :- R(x), not R(x).");
  FeasibleResult result = Feasible(q, catalog);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.path, FeasibleDecisionPath::kPlansEqual);
}

TEST(FeasibleTest, FalseQueryIsFeasible) {
  Catalog catalog;
  EXPECT_TRUE(IsFeasible(UnionQuery(), catalog));
}

TEST(FeasibleTest, ExecutableQueryTrivles) {
  Catalog catalog = Catalog::MustParse("R/2: oo\nS/1: i\n");
  EXPECT_TRUE(IsFeasible(
      MustParseUnionQuery("Q(x) :- R(x, y), not S(y)."), catalog));
}

TEST(FeasibleTest, NegationMakesInfeasibleWhereUnionWouldSave) {
  // Single disjunct R(x), ¬S(x) with S callable but ¬ needs x...
  // here S^i is fine since x is bound by R — feasible.
  Catalog catalog = Catalog::MustParse("R/1: o\nS/1: i\n");
  EXPECT_TRUE(
      IsFeasible(MustParseUnionQuery("Q(x) :- R(x), not S(x)."), catalog));
  // But with R^i nothing can start: ans(Q) is unsafe -> null path.
  Catalog catalog2 = Catalog::MustParse("R/1: i\nS/1: i\n");
  FeasibleResult result =
      Feasible(MustParseUnionQuery("Q(x) :- R(x), not S(x)."), catalog2);
  EXPECT_FALSE(result.feasible);
  EXPECT_EQ(result.path, FeasibleDecisionPath::kNullInOverestimate);
}

TEST(FeasibleTest, UnionWithRedundantInfeasibleDisjunct) {
  // The infeasible disjunct is absorbed by the feasible one.
  Catalog catalog = Catalog::MustParse("R/1: o\nB/1: i\n");
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- R(x), B(y).
    Q(x) :- R(x).
  )");
  FeasibleResult result = Feasible(q, catalog);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.path, FeasibleDecisionPath::kContainment);
}

TEST(FeasibleTest, DecisionPathToString) {
  EXPECT_EQ(ToString(FeasibleDecisionPath::kPlansEqual), "plans-equal");
  EXPECT_EQ(ToString(FeasibleDecisionPath::kNullInOverestimate),
            "null-in-overestimate");
  EXPECT_EQ(ToString(FeasibleDecisionPath::kContainment), "containment");
}

TEST(FeasibleTest, NodeBudgetPropagates) {
  // With a tiny node budget the containment path aborts and reports
  // "not feasible" conservatively, with the aborted flag set.
  Catalog catalog = Catalog::MustParse("R/1: o\nB/1: i\nS/1: o\n");
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- R(x), B(y), not S(x).
    Q(x) :- R(x), S(x).
    Q(x) :- R(x), not S(x).
  )");
  ContainmentOptions options;
  options.max_nodes = 1;
  FeasibleResult result = Feasible(q, catalog, options);
  EXPECT_EQ(result.path, FeasibleDecisionPath::kContainment);
  EXPECT_TRUE(result.containment_stats.aborted);
  EXPECT_FALSE(result.feasible);
  // With an ample budget the same query is feasible.
  EXPECT_TRUE(IsFeasible(q, catalog));
}

}  // namespace
}  // namespace ucqn
