#include "eval/source.h"

#include <gtest/gtest.h>

namespace ucqn {
namespace {

class DatabaseSourceTest : public ::testing::Test {
 protected:
  DatabaseSourceTest() {
    catalog_ = Catalog::MustParse("B/3: ioo oio ooo\nL/1: o i\n");
    db_ = Database::MustParseFacts(R"(
      B(1, "Knuth", "TAOCP").
      B(2, "Date", "DBS").
      B(3, "Knuth", "CM").
      L(2).
    )");
  }

  Catalog catalog_;
  Database db_;
};

TEST_F(DatabaseSourceTest, FetchByInputSlot) {
  DatabaseSource source(&db_, &catalog_);
  // Example 2: with B^oio, an author yields the matching books.
  std::vector<Tuple> result =
      source.FetchOrDie("B", AccessPattern::MustParse("oio"),
                        {std::nullopt, Term::Constant("Knuth"), std::nullopt});
  EXPECT_EQ(result.size(), 2u);
  result = source.FetchOrDie("B", AccessPattern::MustParse("ioo"),
                             {Term::Constant("2"), std::nullopt, std::nullopt});
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(result[0][1], Term::Constant("Date"));
}

TEST_F(DatabaseSourceTest, FetchReportsOkStatus) {
  DatabaseSource source(&db_, &catalog_);
  FetchResult result =
      source.Fetch("B", AccessPattern::MustParse("ooo"),
                   {std::nullopt, std::nullopt, std::nullopt});
  EXPECT_TRUE(result.ok());
  EXPECT_EQ(result.status, FetchStatus::kOk);
  EXPECT_TRUE(result.error.empty());
  EXPECT_EQ(result.tuples.size(), 3u);
}

TEST_F(DatabaseSourceTest, FullScanPattern) {
  DatabaseSource source(&db_, &catalog_);
  std::vector<Tuple> result =
      source.FetchOrDie("B", AccessPattern::MustParse("ooo"),
                        {std::nullopt, std::nullopt, std::nullopt});
  EXPECT_EQ(result.size(), 3u);
}

TEST_F(DatabaseSourceTest, OutputSlotValuesAreNotFiltered) {
  DatabaseSource source(&db_, &catalog_);
  // Supplying a value at an output slot is ignored by the source (the
  // paper's footnote 4: the caller must filter).
  std::vector<Tuple> result =
      source.FetchOrDie("B", AccessPattern::MustParse("oio"),
                        {Term::Constant("1"), Term::Constant("Knuth"),
                         std::nullopt});
  EXPECT_EQ(result.size(), 2u);  // both Knuth books, not just isbn 1
}

TEST_F(DatabaseSourceTest, MembershipProbe) {
  DatabaseSource source(&db_, &catalog_);
  EXPECT_EQ(source
                .FetchOrDie("L", AccessPattern::MustParse("i"),
                            {Term::Constant("2")})
                .size(),
            1u);
  EXPECT_TRUE(source
                  .FetchOrDie("L", AccessPattern::MustParse("i"),
                              {Term::Constant("9")})
                  .empty());
}

TEST_F(DatabaseSourceTest, EmptyRelationYieldsNothing) {
  Catalog catalog = Catalog::MustParse("X/1: o\n");
  Database empty;
  DatabaseSource source(&empty, &catalog);
  EXPECT_TRUE(
      source.FetchOrDie("X", AccessPattern::MustParse("o"), {std::nullopt})
          .empty());
  EXPECT_EQ(source.stats().calls, 1u);
  EXPECT_EQ(source.stats().tuples_returned, 0u);
}

TEST_F(DatabaseSourceTest, StatsAccumulateAndReset) {
  DatabaseSource source(&db_, &catalog_);
  source.FetchOrDie("B", AccessPattern::MustParse("ooo"),
                    {std::nullopt, std::nullopt, std::nullopt});
  source.FetchOrDie("L", AccessPattern::MustParse("o"), {std::nullopt});
  EXPECT_EQ(source.stats().calls, 2u);
  EXPECT_EQ(source.stats().tuples_returned, 4u);
  ASSERT_EQ(source.per_relation_stats().size(), 2u);
  EXPECT_EQ(source.per_relation_stats().at("B").calls, 1u);
  EXPECT_EQ(source.per_relation_stats().at("B").tuples_returned, 3u);
  source.ResetStats();
  EXPECT_EQ(source.stats().calls, 0u);
  EXPECT_TRUE(source.per_relation_stats().empty());
}

using DatabaseSourceDeathTest = DatabaseSourceTest;

TEST_F(DatabaseSourceDeathTest, EnforcesDeclaredPatterns) {
  DatabaseSource source(&db_, &catalog_);
  // B^iio is not declared.
  EXPECT_DEATH(source.Fetch("B", AccessPattern::MustParse("iio"),
                            {Term::Constant("1"), Term::Constant("Knuth"),
                             std::nullopt}),
               "undeclared access pattern");
}

TEST_F(DatabaseSourceDeathTest, EnforcesInputValues) {
  DatabaseSource source(&db_, &catalog_);
  EXPECT_DEATH(source.Fetch("B", AccessPattern::MustParse("ioo"),
                            {std::nullopt, std::nullopt, std::nullopt}),
               "input slot requires a ground value");
}

TEST_F(DatabaseSourceDeathTest, EnforcesDeclaredRelation) {
  DatabaseSource source(&db_, &catalog_);
  EXPECT_DEATH(
      source.Fetch("Nope", AccessPattern::MustParse("o"), {std::nullopt}),
      "undeclared relation");
}

TEST_F(DatabaseSourceDeathTest, RejectsInputArityMismatchingDeclaredArity) {
  // Regression: an inputs vector sized for some other relation must be
  // rejected against B's declared arity (3), not silently zipped with the
  // pattern.
  DatabaseSource source(&db_, &catalog_);
  EXPECT_DEATH(source.Fetch("B", AccessPattern::MustParse("oio"),
                            {std::nullopt, Term::Constant("Knuth")}),
               "one entry per declared slot");
  EXPECT_DEATH(source.Fetch("B", AccessPattern::MustParse("oio"),
                            {std::nullopt, Term::Constant("Knuth"),
                             std::nullopt, std::nullopt}),
               "one entry per declared slot");
}

TEST_F(DatabaseSourceDeathTest, RejectsStoredTupleArityMismatch) {
  // Regression: Database has no catalog, so a relation can be loaded with
  // an arity that disagrees with its declaration; fetching it must die
  // instead of indexing out of bounds.
  Database bad;
  bad.Insert("B", {Term::Constant("7"), Term::Constant("Short")});
  DatabaseSource source(&bad, &catalog_);
  EXPECT_DEATH(source.Fetch("B", AccessPattern::MustParse("ooo"),
                            {std::nullopt, std::nullopt, std::nullopt}),
               "stored tuple arity");
}

TEST(FetchResultTest, FactoriesSetStatusAndPayload) {
  FetchResult ok = FetchResult::Ok({{Term::Constant("a")}});
  EXPECT_TRUE(ok.ok());
  EXPECT_EQ(ok.tuples.size(), 1u);

  FetchResult transient = FetchResult::TransientError("boom");
  EXPECT_FALSE(transient.ok());
  EXPECT_EQ(transient.status, FetchStatus::kTransientError);
  EXPECT_EQ(transient.error, "boom");

  FetchResult budget = FetchResult::BudgetExhausted("spent");
  EXPECT_FALSE(budget.ok());
  EXPECT_EQ(budget.status, FetchStatus::kBudgetExhausted);
  EXPECT_EQ(budget.error, "spent");
}

}  // namespace
}  // namespace ucqn
