#include "runtime/clock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ucqn {
namespace {

TEST(SimulatedClockTest, StartsAtZeroAndAdvancesBySleeps) {
  SimulatedClock clock;
  EXPECT_EQ(clock.NowMicros(), 0u);
  clock.SleepMicros(250);
  EXPECT_EQ(clock.NowMicros(), 250u);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 300u);
}

TEST(SimulatedClockTest, ConcurrentSleepsOutsideAWaveSum) {
  // Outside a wave the clock models sequential execution: every sleep
  // advances shared time by its full duration, whichever thread slept.
  SimulatedClock clock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < 100; ++i) clock.SleepMicros(10);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(clock.NowMicros(), 4u * 100u * 10u);
}

TEST(SimulatedClockTest, WaveChargesTheMaximumWorkerOffset) {
  // Inside a wave each thread accrues a private timeline; EndWave advances
  // shared time by the slowest worker only — the wall-clock of overlapped
  // remote calls.
  SimulatedClock clock;
  clock.SleepMicros(1000);
  clock.BeginWave(3);
  std::vector<std::thread> threads;
  const std::uint64_t budgets[] = {300, 700, 500};
  for (std::uint64_t budget : budgets) {
    threads.emplace_back([&clock, budget] {
      // Sleep in uneven slices so interleavings differ run to run.
      clock.SleepMicros(budget / 2);
      clock.SleepMicros(budget - budget / 2);
    });
  }
  for (std::thread& thread : threads) thread.join();
  clock.EndWave();
  EXPECT_EQ(clock.NowMicros(), 1000u + 700u);
}

TEST(SimulatedClockTest, WaveAdvanceIsDeterministicUnderInterleaving) {
  // Satellite regression: the wave advance must be a pure function of the
  // per-thread sleep totals, never of scheduling. 50 repetitions with
  // racing threads must all land on the same virtual duration.
  for (int repetition = 0; repetition < 50; ++repetition) {
    SimulatedClock clock;
    clock.BeginWave(4);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&clock, t] {
        for (int i = 0; i <= t; ++i) clock.SleepMicros(100);
      });
    }
    for (std::thread& thread : threads) thread.join();
    clock.EndWave();
    EXPECT_EQ(clock.NowMicros(), 400u);  // slowest worker: 4 x 100us
  }
}

TEST(SimulatedClockTest, NowInsideAWaveIsPerThread) {
  SimulatedClock clock;
  clock.SleepMicros(100);
  clock.BeginWave(2);
  std::uint64_t worker_now = 0;
  std::thread worker([&] {
    clock.SleepMicros(40);
    worker_now = clock.NowMicros();
  });
  worker.join();
  // The worker sees its own offset; the dispatcher (which has not slept
  // during the wave) still sees the wave's start time.
  EXPECT_EQ(worker_now, 140u);
  EXPECT_EQ(clock.NowMicros(), 100u);
  clock.EndWave();
  EXPECT_EQ(clock.NowMicros(), 140u);
}

TEST(SimulatedClockTest, BackToBackWavesAccumulate) {
  SimulatedClock clock;
  for (int wave = 0; wave < 3; ++wave) {
    clock.BeginWave(2);
    std::thread a([&clock] { clock.SleepMicros(10); });
    std::thread b([&clock] { clock.SleepMicros(30); });
    a.join();
    b.join();
    clock.EndWave();
  }
  EXPECT_EQ(clock.NowMicros(), 90u);
}

TEST(SteadyClockTest, IsMonotoneAndSleepsAtLeastTheRequest) {
  SteadyClock clock;
  const std::uint64_t before = clock.NowMicros();
  clock.SleepMicros(1000);
  const std::uint64_t after = clock.NowMicros();
  EXPECT_GE(after, before + 1000u);
}

}  // namespace
}  // namespace ucqn
