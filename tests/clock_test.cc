#include "runtime/clock.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace ucqn {
namespace {

TEST(SimulatedClockTest, StartsAtZeroAndAdvancesBySleeps) {
  SimulatedClock clock;
  EXPECT_EQ(clock.NowMicros(), 0u);
  clock.SleepMicros(250);
  EXPECT_EQ(clock.NowMicros(), 250u);
  clock.Advance(50);
  EXPECT_EQ(clock.NowMicros(), 300u);
}

TEST(SimulatedClockTest, ConcurrentSleepsOutsideAWaveSum) {
  // Outside a wave the clock models sequential execution: every sleep
  // advances shared time by its full duration, whichever thread slept.
  SimulatedClock clock;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&clock] {
      for (int i = 0; i < 100; ++i) clock.SleepMicros(10);
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(clock.NowMicros(), 4u * 100u * 10u);
}

TEST(SimulatedClockTest, WaveChargesTheMaximumWorkerOffset) {
  // Inside a wave each thread accrues a private timeline; EndWave advances
  // shared time by the slowest worker only — the wall-clock of overlapped
  // remote calls.
  SimulatedClock clock;
  clock.SleepMicros(1000);
  clock.BeginWave(3);
  std::vector<std::thread> threads;
  const std::uint64_t budgets[] = {300, 700, 500};
  for (std::uint64_t budget : budgets) {
    threads.emplace_back([&clock, budget] {
      // Sleep in uneven slices so interleavings differ run to run.
      clock.SleepMicros(budget / 2);
      clock.SleepMicros(budget - budget / 2);
    });
  }
  for (std::thread& thread : threads) thread.join();
  clock.EndWave();
  EXPECT_EQ(clock.NowMicros(), 1000u + 700u);
}

TEST(SimulatedClockTest, WaveAdvanceIsDeterministicUnderInterleaving) {
  // Satellite regression: the wave advance must be a pure function of the
  // per-thread sleep totals, never of scheduling. 50 repetitions with
  // racing threads must all land on the same virtual duration.
  for (int repetition = 0; repetition < 50; ++repetition) {
    SimulatedClock clock;
    clock.BeginWave(4);
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
      threads.emplace_back([&clock, t] {
        for (int i = 0; i <= t; ++i) clock.SleepMicros(100);
      });
    }
    for (std::thread& thread : threads) thread.join();
    clock.EndWave();
    EXPECT_EQ(clock.NowMicros(), 400u);  // slowest worker: 4 x 100us
  }
}

TEST(SimulatedClockTest, NowInsideAWaveIsPerThread) {
  SimulatedClock clock;
  clock.SleepMicros(100);
  clock.BeginWave(2);
  std::uint64_t worker_now = 0;
  std::thread worker([&] {
    clock.SleepMicros(40);
    worker_now = clock.NowMicros();
  });
  worker.join();
  // The worker sees its own offset; the dispatcher (which has not slept
  // during the wave) still sees the wave's start time.
  EXPECT_EQ(worker_now, 140u);
  EXPECT_EQ(clock.NowMicros(), 100u);
  clock.EndWave();
  EXPECT_EQ(clock.NowMicros(), 140u);
}

TEST(SimulatedClockTest, BackToBackWavesAccumulate) {
  SimulatedClock clock;
  for (int wave = 0; wave < 3; ++wave) {
    clock.BeginWave(2);
    std::thread a([&clock] { clock.SleepMicros(10); });
    std::thread b([&clock] { clock.SleepMicros(30); });
    a.join();
    b.join();
    clock.EndWave();
  }
  EXPECT_EQ(clock.NowMicros(), 90u);
}

TEST(SimulatedClockTest, OverlapChargesTheLongestLane) {
  // The executor's inter-literal pipelining bracket: several literals'
  // waves resolve concurrently, each in its own lane; EndOverlap advances
  // shared time by the slowest lane only.
  SimulatedClock clock;
  clock.SleepMicros(100);
  clock.BeginOverlap();
  clock.BeginLane();
  clock.SleepMicros(300);
  clock.EndLane();
  clock.BeginLane();
  clock.SleepMicros(500);
  clock.EndLane();
  clock.BeginLane();
  clock.SleepMicros(200);
  clock.EndLane();
  clock.EndOverlap();
  EXPECT_EQ(clock.NowMicros(), 100u + 500u);
}

TEST(SimulatedClockTest, NowInsideALaneIncludesLaneProgress) {
  // Deadline checks made mid-lane (e.g. RetryingSource's budget gate)
  // must see the lane's own progress, while a later lane of the same
  // overlap starts back at the overlap's start time.
  SimulatedClock clock;
  clock.SleepMicros(1000);
  clock.BeginOverlap();
  clock.BeginLane();
  clock.SleepMicros(250);
  EXPECT_EQ(clock.NowMicros(), 1250u);
  clock.EndLane();
  clock.BeginLane();
  EXPECT_EQ(clock.NowMicros(), 1000u);  // lanes are alternative timelines
  clock.SleepMicros(100);
  EXPECT_EQ(clock.NowMicros(), 1100u);
  clock.EndLane();
  clock.EndOverlap();
  EXPECT_EQ(clock.NowMicros(), 1250u);
}

TEST(SimulatedClockTest, WaveNestedInALaneFoldsIntoTheLane) {
  // A parallel wave resolving inside an overlapped lane (ParallelSource
  // under the pipelined executor): the wave's max-over-workers charge
  // lands on the lane, and the overlap still takes max-over-lanes.
  SimulatedClock clock;
  clock.BeginOverlap();
  clock.BeginLane();
  clock.BeginWave(2);
  std::thread a([&clock] { clock.SleepMicros(100); });
  std::thread b([&clock] { clock.SleepMicros(300); });
  a.join();
  b.join();
  clock.EndWave();
  clock.SleepMicros(50);  // post-wave work, still in the lane
  clock.EndLane();
  clock.BeginLane();
  clock.SleepMicros(200);
  clock.EndLane();
  clock.EndOverlap();
  EXPECT_EQ(clock.NowMicros(), 300u + 50u);  // max(350, 200)
}

TEST(SimulatedClockTest, EmptyAndBackToBackOverlapsAreCheap) {
  SimulatedClock clock;
  clock.BeginOverlap();
  clock.EndOverlap();
  EXPECT_EQ(clock.NowMicros(), 0u);  // nothing ran, nothing charged
  for (int i = 0; i < 3; ++i) {
    clock.BeginOverlap();
    clock.BeginLane();
    clock.SleepMicros(10);
    clock.EndLane();
    clock.BeginLane();
    clock.SleepMicros(30);
    clock.EndLane();
    clock.EndOverlap();
  }
  EXPECT_EQ(clock.NowMicros(), 90u);  // 3 x max(10, 30)
}

TEST(SteadyClockTest, OverlapBracketsAreNoOpsOnRealClocks) {
  // Real clocks already overlap for real; the brackets must be safely
  // ignorable by every Clock implementation.
  SteadyClock clock;
  const std::uint64_t before = clock.NowMicros();
  clock.BeginOverlap();
  clock.BeginLane();
  clock.EndLane();
  clock.EndOverlap();
  EXPECT_GE(clock.NowMicros(), before);
}

TEST(SteadyClockTest, IsMonotoneAndSleepsAtLeastTheRequest) {
  SteadyClock clock;
  const std::uint64_t before = clock.NowMicros();
  clock.SleepMicros(1000);
  const std::uint64_t after = clock.NowMicros();
  EXPECT_GE(after, before + 1000u);
}

}  // namespace
}  // namespace ucqn
