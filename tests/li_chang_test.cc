#include "feasibility/li_chang.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "feasibility/feasible.h"
#include "gen/random_query.h"

namespace ucqn {
namespace {

TEST(CqStableTest, Example9BothAlgorithmsAgree) {
  Catalog catalog = Catalog::MustParse("F/1: o\nB/1: i\n");
  ConjunctiveQuery q = MustParseRule("Q(x) :- F(x), B(x), B(y), F(z).");
  EXPECT_TRUE(CqStable(q, catalog));
  EXPECT_TRUE(CqStableStar(q, catalog));
  EXPECT_TRUE(IsFeasible(UnionQuery(q), catalog));
}

TEST(CqStableTest, InfeasibleCq) {
  // B(y) with y a head variable cannot be saved by minimization.
  Catalog catalog = Catalog::MustParse("F/1: o\nB/1: i\n");
  ConjunctiveQuery q = MustParseRule("Q(x, y) :- F(x), B(y).");
  EXPECT_FALSE(CqStable(q, catalog));
  EXPECT_FALSE(CqStableStar(q, catalog));
  EXPECT_FALSE(IsFeasible(UnionQuery(q), catalog));
}

TEST(CqStableStarTest, OrderableSkipsContainment) {
  Catalog catalog = Catalog::MustParse("F/1: o\nG/1: i\n");
  ConjunctiveQuery q = MustParseRule("Q(x) :- G(x), F(x).");
  EXPECT_TRUE(CqStableStar(q, catalog));  // reorder F before G
  EXPECT_TRUE(CqStable(q, catalog));
}

TEST(CqStableTest, MinimizationRescuesWhereAnsDoesToo) {
  // Q(x) :- F(x), G(x, y): G^ii makes G unanswerable; minimization cannot
  // drop G (it's not redundant): infeasible by both algorithms.
  Catalog catalog = Catalog::MustParse("F/1: o\nG/2: ii\n");
  ConjunctiveQuery q = MustParseRule("Q(x) :- F(x), G(x, y).");
  EXPECT_FALSE(CqStable(q, catalog));
  EXPECT_FALSE(CqStableStar(q, catalog));
}

TEST(UcqStableTest, Example10) {
  Catalog catalog = Catalog::MustParse("F/1: o\nG/1: o\nH/1: o\nB/1: i\n");
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- F(x), G(x).
    Q(x) :- F(x), H(x), B(y).
    Q(x) :- F(x).
  )");
  EXPECT_TRUE(UcqStable(q, catalog));
  EXPECT_TRUE(UcqStableStar(q, catalog));
  EXPECT_TRUE(IsFeasible(q, catalog));
}

TEST(UcqStableTest, InfeasibleUnion) {
  // The B(y) disjunct is not absorbed by anything.
  Catalog catalog = Catalog::MustParse("F/1: o\nG/1: o\nB/1: i\n");
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- F(x), B(y).
    Q(x) :- G(x).
  )");
  EXPECT_FALSE(UcqStable(q, catalog));
  EXPECT_FALSE(UcqStableStar(q, catalog));
  EXPECT_FALSE(IsFeasible(q, catalog));
}

TEST(UcqStableTest, EmptyUnionIsStable) {
  Catalog catalog;
  EXPECT_TRUE(UcqStable(UnionQuery(), catalog));
  EXPECT_TRUE(UcqStableStar(UnionQuery(), catalog));
}

// Parameterized agreement sweep: all four baseline algorithms and the
// uniform FEASIBLE must return the same verdict on random CQ/UCQ
// workloads (Sections 5.3/5.4 claim FEASIBLE is optimal and correct for
// these classes).
class LiChangAgreementTest : public ::testing::TestWithParam<int> {};

TEST_P(LiChangAgreementTest, AllAlgorithmsAgreeOnRandomCqs) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()));
  RandomSchemaOptions schema_options;
  schema_options.input_slot_prob = 0.5;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 4;
  options.num_variables = 3;
  options.negation_prob = 0.0;
  for (int i = 0; i < 20; ++i) {
    ConjunctiveQuery q = RandomCq(&rng, catalog, options);
    const bool stable = CqStable(q, catalog);
    const bool stable_star = CqStableStar(q, catalog);
    const bool feasible = IsFeasible(UnionQuery(q), catalog);
    EXPECT_EQ(stable, stable_star) << q.ToString();
    EXPECT_EQ(stable, feasible) << q.ToString();
  }
}

TEST_P(LiChangAgreementTest, AllAlgorithmsAgreeOnRandomUcqs) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 1000);
  RandomSchemaOptions schema_options;
  schema_options.input_slot_prob = 0.5;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 3;
  options.head_arity = 1;
  for (int i = 0; i < 10; ++i) {
    UnionQuery q = RandomUcq(&rng, catalog, options, 3);
    const bool stable = UcqStable(q, catalog);
    const bool stable_star = UcqStableStar(q, catalog);
    const bool feasible = IsFeasible(q, catalog);
    EXPECT_EQ(stable, stable_star) << q.ToString();
    EXPECT_EQ(stable, feasible) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LiChangAgreementTest,
                         ::testing::Range(0, 8));

}  // namespace
}  // namespace ucqn
