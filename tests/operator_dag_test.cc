// Regression corpus for the push-based operator-DAG executor: across the
// paper's worked examples (gen/scenarios.h, Examples 1-10) and the
// parallelism grid, the DAG path (the default) must be byte-identical to
// the pre-DAG encoded loop (--legacy-executor) — answer sets, ANSWER*
// brackets and summaries, witness order, runtime ledgers, and error
// messages. Morsel splitting must preserve answers and witness order.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ast/parser.h"
#include "cost/cost_model.h"
#include "eval/answer_star.h"
#include "eval/executor.h"
#include "eval/op/lowering.h"
#include "feasibility/plan_star.h"
#include "gen/scenarios.h"

namespace ucqn {
namespace {

ExecutionOptions GridOptions(bool dag, std::size_t parallelism) {
  ExecutionOptions options;
  options.batch = true;
  options.dictionary = true;
  options.dag = dag;
  options.runtime.metering = true;  // force a stack so ledgers are live
  options.runtime.parallelism = parallelism;
  return options;
}

std::vector<std::string> BindingStrings(const BindingsResult& result) {
  std::vector<std::string> order;
  order.reserve(result.bindings.size());
  for (const Substitution& binding : result.bindings) {
    order.push_back(binding.ToString());
  }
  return order;
}

TEST(OperatorDagTest, AnswerStarBracketsMatchTheLegacyOracleAcrossTheGrid) {
  for (const Scenario& scenario : AllScenarios()) {
    for (std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE(scenario.name +
                   " parallelism=" + std::to_string(parallelism));

      DatabaseSource oracle_backend(&scenario.database, &scenario.catalog);
      AnswerStarReport oracle =
          AnswerStar(scenario.query, scenario.catalog, &oracle_backend,
                     GridOptions(/*dag=*/false, parallelism));
      ASSERT_TRUE(oracle.ok) << oracle.error;

      DatabaseSource dag_backend(&scenario.database, &scenario.catalog);
      AnswerStarReport dag =
          AnswerStar(scenario.query, scenario.catalog, &dag_backend,
                     GridOptions(/*dag=*/true, parallelism));
      ASSERT_TRUE(dag.ok) << dag.error;

      // The full bracket, byte for byte — including the null-padded
      // overestimate rows (Ex. 7) that exercise the Δ-null sentinel.
      EXPECT_EQ(dag.under, oracle.under);
      EXPECT_EQ(dag.over, oracle.over);
      EXPECT_EQ(dag.delta, oracle.delta);
      EXPECT_EQ(dag.complete, oracle.complete);
      EXPECT_EQ(dag.delta_has_nulls, oracle.delta_has_nulls);
      EXPECT_EQ(dag.completeness_lower_bound,
                oracle.completeness_lower_bound);
      EXPECT_EQ(dag.Summary(), oracle.Summary());
      // Same physical calls: the DAG changes who drives the loop, not
      // the call waves the dedup produces.
      EXPECT_EQ(dag.runtime.source_calls, oracle.runtime.source_calls);
    }
  }
}

TEST(OperatorDagTest, WitnessOrderMatchesTheLegacyOracleAcrossTheGrid) {
  for (const Scenario& scenario : AllScenarios()) {
    const PlanStarResult plans = PlanStar(scenario.query, scenario.catalog);
    std::vector<ConjunctiveQuery> bodies;
    bodies.insert(bodies.end(), plans.under.disjuncts().begin(),
                  plans.under.disjuncts().end());
    bodies.insert(bodies.end(), plans.over.disjuncts().begin(),
                  plans.over.disjuncts().end());
    for (std::size_t i = 0; i < bodies.size(); ++i) {
      for (std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
        SCOPED_TRACE(scenario.name + " disjunct=" + std::to_string(i) +
                     " parallelism=" + std::to_string(parallelism));

        DatabaseSource oracle_backend(&scenario.database, &scenario.catalog);
        BindingsResult oracle =
            ExecuteForBindings(bodies[i], scenario.catalog, &oracle_backend,
                               GridOptions(/*dag=*/false, parallelism));

        DatabaseSource dag_backend(&scenario.database, &scenario.catalog);
        BindingsResult dag =
            ExecuteForBindings(bodies[i], scenario.catalog, &dag_backend,
                               GridOptions(/*dag=*/true, parallelism));

        ASSERT_EQ(dag.ok, oracle.ok) << dag.error << " vs " << oracle.error;
        if (!oracle.ok) {
          EXPECT_EQ(dag.error, oracle.error);
          continue;
        }
        // The witness sequence exactly, not just its set: Materialize
        // must replay the legacy loop's left-to-right derivation order.
        EXPECT_EQ(BindingStrings(dag), BindingStrings(oracle));
      }
    }
  }
}

TEST(OperatorDagTest, MorselSplittingPreservesWitnessOrder) {
  // Splitting wide frontiers into morsels reshapes the call waves (one
  // wave per morsel) but must not perturb answers or derivation order.
  for (const Scenario& scenario : AllScenarios()) {
    const PlanStarResult plans = PlanStar(scenario.query, scenario.catalog);
    for (const ConjunctiveQuery& body : plans.under.disjuncts()) {
      DatabaseSource whole_backend(&scenario.database, &scenario.catalog);
      BindingsResult whole = ExecuteForBindings(
          body, scenario.catalog, &whole_backend, GridOptions(true, 1));

      for (std::size_t morsel_rows :
           {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
        SCOPED_TRACE(scenario.name +
                     " morsel_rows=" + std::to_string(morsel_rows));
        DatabaseSource backend(&scenario.database, &scenario.catalog);
        ExecutionOptions options = GridOptions(/*dag=*/true, 1);
        options.morsel_rows = morsel_rows;
        BindingsResult split =
            ExecuteForBindings(body, scenario.catalog, &backend, options);
        ASSERT_EQ(split.ok, whole.ok) << split.error;
        if (!whole.ok) continue;
        EXPECT_EQ(BindingStrings(split), BindingStrings(whole));
      }
    }
  }
}

TEST(OperatorDagTest, ErrorMessagesMatchTheLegacyOracle) {
  const Catalog catalog = Catalog::MustParse("R/2: oo\nT/2: io\n");
  const Database db = Database::MustParseFacts(R"(
    R("a", "b").
    R("c", "d").
    R("e", "f").
    T("b", "t1").
  )");
  const ConjunctiveQuery query = MustParseRule("Q(x, w) :- R(x, z), T(z, w).");

  // max_bindings trips at the same literal with the same message.
  for (bool dag : {false, true}) {
    SCOPED_TRACE(dag ? "dag" : "legacy");
    DatabaseSource backend(&db, &catalog);
    ExecutionOptions options = GridOptions(dag, 1);
    options.max_bindings = 2;
    ExecutionResult result = Execute(query, catalog, &backend, options);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error,
              "execution exceeded max_bindings (2) at literal R(x, z)");
  }

  // A literal with no usable pattern fails identically.
  const ConjunctiveQuery gap = MustParseRule("Q(x, w) :- T(z, w), R(x, z).");
  std::string oracle_error;
  for (bool dag : {false, true}) {
    DatabaseSource backend(&db, &catalog);
    ExecutionResult result =
        Execute(gap, catalog, &backend, GridOptions(dag, 1));
    EXPECT_FALSE(result.ok);
    if (!dag) {
      oracle_error = result.error;
      EXPECT_NE(oracle_error.find("no usable access pattern"),
                std::string::npos);
    } else {
      EXPECT_EQ(result.error, oracle_error);
    }
  }
}

TEST(OperatorDagTest, SharedCacheLedgerMatchesTheLegacyOracle) {
  // With caching on, hit/miss/insert counts are part of the contract:
  // the DAG's staged waves must group calls exactly like the loop did.
  const Catalog catalog = Catalog::MustParse("R/2: oo io\nT/2: io\nS/1: o\n");
  const Database db = Database::MustParseFacts(R"(
    R("a", "b").
    R("c", "b").
    R("e", "d").
    T("b", "t1").
    T("d", "t2").
    S("d").
  )");
  const ConjunctiveQuery query =
      MustParseRule("Q(x, w) :- R(x, z), T(z, w), not S(z).");

  std::uint64_t oracle_calls = 0;
  std::uint64_t oracle_hits = 0;
  for (bool dag : {false, true}) {
    SCOPED_TRACE(dag ? "dag" : "legacy");
    DatabaseSource backend(&db, &catalog);
    ExecutionOptions options = GridOptions(dag, 1);
    options.runtime.cache = true;
    ExecutionResult result = Execute(query, catalog, &backend, options);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.tuples.size(), 2u);  // Q("a","t1"), Q("c","t1")
    if (!dag) {
      oracle_calls = result.runtime.source_calls;
      oracle_hits = result.runtime.cache_hits;
    } else {
      EXPECT_EQ(result.runtime.source_calls, oracle_calls);
      EXPECT_EQ(result.runtime.cache_hits, oracle_hits);
    }
  }
}

TEST(OperatorDagTest, ExecutorCountersAccumulate) {
  // The DAG-side RuntimeStats: one executed disjunct per body, at least
  // one morsel per fetch operator reached, and anti-join build tuples
  // counted from the negated literal's probe sets.
  const Catalog catalog = Catalog::MustParse("R/2: oo\nS/1: i\n");
  const Database db = Database::MustParseFacts(R"(
    R("a", "b").
    R("c", "d").
    S("b").
  )");
  const ConjunctiveQuery query = MustParseRule("Q(x) :- R(x, z), not S(z).");

  DatabaseSource backend(&db, &catalog);
  ExecutionResult result =
      Execute(query, catalog, &backend, GridOptions(/*dag=*/true, 1));
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.tuples.size(), 1u);  // Q("c") — S filters away "b"
  EXPECT_EQ(result.runtime.disjuncts_executed, 1u);
  EXPECT_GE(result.runtime.morsels, 2u);  // R scan + S anti-join
  EXPECT_EQ(result.runtime.antijoin_build_tuples, 1u);  // S("b") only

  // The legacy loop runs no operators; its counters stay zero. This is
  // what makes `--legacy-executor` distinguishable in `--metrics`.
  DatabaseSource legacy_backend(&db, &catalog);
  ExecutionResult legacy =
      Execute(query, catalog, &legacy_backend, GridOptions(/*dag=*/false, 1));
  ASSERT_TRUE(legacy.ok) << legacy.error;
  EXPECT_EQ(legacy.tuples, result.tuples);
  EXPECT_EQ(legacy.runtime.disjuncts_executed, 0u);
  EXPECT_EQ(legacy.runtime.morsels, 0u);
}

TEST(OperatorDagTest, LoweringRendersTheCompiledChain) {
  // What `--explain` prints per disjunct: operator kind, access pattern,
  // estimated cost, root-first with arrow continuation and an implicit
  // Materialize sink.
  const Catalog catalog = Catalog::MustParse("R/2: oo\nT/2: io\nS/1: i\n");
  const ConjunctiveQuery query =
      MustParseRule("Q(x, w) :- R(x, z), T(z, w), not S(z).");
  const StaticCostModel model;

  LoweredChain chain = LowerDisjunct(query, catalog, model);
  ASSERT_TRUE(chain.ok);
  ASSERT_EQ(chain.ops.size(), 3u);
  EXPECT_EQ(chain.ops[0].kind, OperatorKind::kAccessScan);
  EXPECT_EQ(chain.ops[1].kind, OperatorKind::kHashJoin);
  EXPECT_EQ(chain.ops[2].kind, OperatorKind::kHashAntiJoin);

  const std::string rendered = chain.ToString();
  EXPECT_NE(rendered.find("AccessScan R(x, z) via oo"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("-> HashJoin T(z, w) via io"), std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("-> HashAntiJoin not S(z) via i"),
            std::string::npos)
      << rendered;
  EXPECT_NE(rendered.find("-> Materialize"), std::string::npos) << rendered;
  EXPECT_NE(rendered.find("est_cost="), std::string::npos) << rendered;

  // A fully-bound positive literal at its position is a Filter, sharing
  // IsFilterLiteral with the planner's filters-first scheduling.
  const ConjunctiveQuery filter =
      MustParseRule("Q(x, z) :- R(x, z), T(z, x).");
  LoweredChain filter_chain = LowerDisjunct(filter, catalog, model);
  ASSERT_TRUE(filter_chain.ok);
  ASSERT_EQ(filter_chain.ops.size(), 2u);
  EXPECT_EQ(filter_chain.ops[1].kind, OperatorKind::kFilter);
}

}  // namespace
}  // namespace ucqn
