#include "ast/parser.h"

#include <gtest/gtest.h>

#include <random>

namespace ucqn {
namespace {

TEST(ParseTermTest, Kinds) {
  std::string error;
  EXPECT_EQ(*ParseTerm("x", &error), Term::Variable("x"));
  EXPECT_EQ(*ParseTerm("_tmp", &error), Term::Variable("_tmp"));
  EXPECT_EQ(*ParseTerm("Knuth", &error), Term::Constant("Knuth"));
  EXPECT_EQ(*ParseTerm("42", &error), Term::Constant("42"));
  EXPECT_EQ(*ParseTerm("\"lower case\"", &error),
            Term::Constant("lower case"));
  EXPECT_EQ(*ParseTerm("null", &error), Term::Null());
}

TEST(ParseTermTest, Errors) {
  std::string error;
  EXPECT_FALSE(ParseTerm("", &error).has_value());
  EXPECT_FALSE(ParseTerm("x y", &error).has_value());
  EXPECT_FALSE(ParseTerm("\"unterminated", &error).has_value());
}

TEST(ParseRuleTest, Example1) {
  ConjunctiveQuery q =
      MustParseRule("Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).");
  EXPECT_EQ(q.head_name(), "Q");
  EXPECT_EQ(q.head_arity(), 3u);
  ASSERT_EQ(q.body().size(), 3u);
  EXPECT_TRUE(q.body()[0].positive());
  EXPECT_TRUE(q.body()[2].negative());
  EXPECT_EQ(q.body()[2].relation(), "L");
}

TEST(ParseRuleTest, BangNegation) {
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x), !S(x).");
  EXPECT_TRUE(q.body()[1].negative());
}

TEST(ParseRuleTest, EmptyBodyFact) {
  ConjunctiveQuery q = MustParseRule("B(1, \"Knuth\", \"TAOCP\").");
  EXPECT_TRUE(q.IsTrueQuery());
  EXPECT_EQ(q.head_arity(), 3u);
  EXPECT_EQ(q.head_terms()[0], Term::Constant("1"));
}

TEST(ParseRuleTest, ZeroAryAtoms) {
  ConjunctiveQuery q = MustParseRule("Q() :- Flag(), not Off().");
  EXPECT_EQ(q.head_arity(), 0u);
  EXPECT_EQ(q.body().size(), 2u);
}

TEST(ParseRuleTest, CommentsAreSkipped) {
  ConjunctiveQuery q = MustParseRule(R"(
    # a comment
    Q(x) :- R(x),  % trailing comment
            S(x).
  )");
  EXPECT_EQ(q.body().size(), 2u);
}

TEST(ParseRuleTest, NullTermInHead) {
  ConjunctiveQuery q = MustParseRule("Q(x, null) :- R(x, z), not S(z).");
  EXPECT_TRUE(q.head_terms()[1].IsNull());
}

TEST(ParseRuleTest, Errors) {
  std::string error;
  EXPECT_FALSE(ParseRule("Q(x)", &error).has_value());  // missing '.'
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(ParseRule("Q(x) :- .", &error).has_value());
  EXPECT_FALSE(ParseRule("Q(x :- R(x).", &error).has_value());
  EXPECT_FALSE(ParseRule("Q(x) :- R(x,).", &error).has_value());
  EXPECT_FALSE(ParseRule("Q(x) :- not not R(x).", &error).has_value());
  EXPECT_FALSE(ParseRule("Q(x) :- R(x). extra", &error).has_value());
  EXPECT_FALSE(ParseRule("Q(x) :- R(x)$", &error).has_value());
}

TEST(ParseUnionQueryTest, MultipleRulesOneHead) {
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x, y) :- R(x, z), B(x, y).
    Q(x, y) :- T(x, y).
  )");
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.head_name(), "Q");
}

TEST(ParseUnionQueryTest, RejectsMultipleHeads) {
  std::string error;
  EXPECT_FALSE(
      ParseUnionQuery("Q(x) :- R(x). P(x) :- R(x).", &error).has_value());
  EXPECT_FALSE(error.empty());
}

TEST(ParseProgramTest, GroupsByHeadInOrder) {
  std::vector<UnionQuery> program = MustParseProgram(R"(
    View1(x) :- R(x).
    View2(x) :- S(x).
    View1(x) :- T(x).
  )");
  ASSERT_EQ(program.size(), 2u);
  EXPECT_EQ(program[0].head_name(), "View1");
  EXPECT_EQ(program[0].size(), 2u);
  EXPECT_EQ(program[1].head_name(), "View2");
}

TEST(ParseProgramTest, RejectsInconsistentArity) {
  std::string error;
  EXPECT_FALSE(
      ParseProgram("Q(x) :- R(x). Q(x, y) :- S(x, y).", &error).has_value());
}

TEST(ParseProgramTest, EmptyInputIsEmptyProgram) {
  std::vector<UnionQuery> program = MustParseProgram("  # nothing\n");
  EXPECT_TRUE(program.empty());
}

TEST(ParserRoundTripTest, QuotedConstantsSurvive) {
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x, \"a b\"), S(\"null\").");
  EXPECT_EQ(MustParseRule(q.ToString()), q);
}

TEST(ParserRobustnessTest, RandomGarbageNeverCrashes) {
  // The parser must reject arbitrary byte soup gracefully (error message,
  // no crash, no hang). Seeded for reproducibility.
  std::mt19937 rng(20260704);
  const std::string alphabet =
      "Qx(),.:-!\"# abc\nRST_019%\tnull not\\~";
  std::uniform_int_distribution<std::size_t> pick(0, alphabet.size() - 1);
  std::uniform_int_distribution<int> len(0, 60);
  for (int i = 0; i < 2000; ++i) {
    std::string text;
    const int n = len(rng);
    for (int j = 0; j < n; ++j) text += alphabet[pick(rng)];
    std::string error;
    std::optional<ConjunctiveQuery> rule = ParseRule(text, &error);
    if (!rule.has_value()) {
      EXPECT_FALSE(error.empty()) << "input: " << text;
    } else {
      // Anything accepted must round-trip.
      EXPECT_EQ(MustParseRule(rule->ToString()), *rule) << text;
    }
  }
}

TEST(ParserRobustnessTest, DeeplyNestedishInputTerminates) {
  std::string text = "Q(";
  for (int i = 0; i < 10000; ++i) text += "x,";
  text += "x) :- R(x).";
  std::string error;
  std::optional<ConjunctiveQuery> rule = ParseRule(text, &error);
  ASSERT_TRUE(rule.has_value());
  EXPECT_EQ(rule->head_arity(), 10001u);
}

}  // namespace
}  // namespace ucqn
