// FetchFuture and Source::FetchBatchAsync: the single-shot completion
// token's state machine, the default wrapper's deferral of the *virtual*
// FetchBatch, and async/sync parity (results and stats) through every
// SourceStack decorator combination — including interleaved futures.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ast/parser.h"
#include "eval/executor.h"
#include "eval/source.h"
#include "runtime/fault_injection.h"
#include "runtime/source_stack.h"

namespace ucqn {
namespace {

std::vector<std::vector<std::optional<Term>>> ScanRequest(std::size_t arity) {
  return {std::vector<std::optional<Term>>(arity, std::nullopt)};
}

std::vector<std::vector<std::optional<Term>>> Probes(
    const std::vector<std::string>& keys) {
  std::vector<std::vector<std::optional<Term>>> requests;
  for (const std::string& key : keys) {
    requests.push_back({Term::Constant(key), std::nullopt});
  }
  return requests;
}

void ExpectSameResults(const std::vector<FetchResult>& async_results,
                       const std::vector<FetchResult>& sync_results) {
  ASSERT_EQ(async_results.size(), sync_results.size());
  for (std::size_t i = 0; i < async_results.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_EQ(async_results[i].status, sync_results[i].status);
    EXPECT_EQ(async_results[i].error, sync_results[i].error);
    EXPECT_EQ(async_results[i].tuples, sync_results[i].tuples);
  }
}

class SourceAsyncTest : public ::testing::Test {
 protected:
  SourceAsyncTest() {
    catalog_ = Catalog::MustParse("R/2: oo io\nS/1: o\nT/2: oo io\n");
    db_ = Database::MustParseFacts(R"(
      R("a", "b").
      R("c", "d").
      T("b", "t1").
      T("d", "t2").
      S("b").
    )");
  }

  Catalog catalog_;
  Database db_;
};

TEST(FetchFutureTest, DefaultConstructedIsInvalid) {
  FetchFuture future;
  EXPECT_FALSE(future.valid());
}

TEST(FetchFutureTest, ReadyFutureIsSingleShot) {
  std::vector<FetchResult> results;
  results.push_back(FetchResult::Ok({Tuple{Term::Constant("a")}}));
  FetchFuture future = FetchFuture::Ready(std::move(results));
  ASSERT_TRUE(future.valid());
  std::vector<FetchResult> taken = future.Take();
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_TRUE(taken[0].ok());
  ASSERT_EQ(taken[0].tuples.size(), 1u);
  EXPECT_FALSE(future.valid());  // consumed
}

TEST(FetchFutureTest, DeferredRunsTheClosureOnlyAtTake) {
  int runs = 0;
  FetchFuture future = FetchFuture::Deferred([&runs] {
    ++runs;
    return std::vector<FetchResult>{FetchResult::TransientError("boom")};
  });
  EXPECT_TRUE(future.valid());
  EXPECT_EQ(runs, 0);  // staged, not yet resolved
  std::vector<FetchResult> taken = future.Take();
  EXPECT_EQ(runs, 1);
  ASSERT_EQ(taken.size(), 1u);
  EXPECT_EQ(taken[0].status, FetchStatus::kTransientError);
  EXPECT_FALSE(future.valid());
}

TEST(FetchFutureTest, MoveTransfersValidity) {
  FetchFuture source = FetchFuture::Ready({});
  FetchFuture destination = std::move(source);
  EXPECT_TRUE(destination.valid());
  EXPECT_TRUE(destination.Take().empty());
}

TEST_F(SourceAsyncTest, DefaultAsyncDefersTheVirtualFetchBatch) {
  DatabaseSource backend(&db_, &catalog_);
  const AccessPattern keyed = AccessPattern::MustParse("io");
  FetchFuture future =
      backend.FetchBatchAsync("T", keyed, Probes({"b", "d"}));
  // Nothing has hit the transport yet: the wave resolves at Take().
  EXPECT_EQ(backend.stats().calls, 0u);
  std::vector<FetchResult> async_results = future.Take();
  EXPECT_EQ(backend.stats().calls, 2u);

  DatabaseSource reference(&db_, &catalog_);
  ExpectSameResults(async_results,
                    reference.FetchBatch("T", keyed, Probes({"b", "d"})));
}

TEST_F(SourceAsyncTest, AsyncParityThroughEveryStackCombo) {
  // The tentpole contract: because the default FetchBatchAsync defers the
  // *virtual* FetchBatch, every decorator's batch semantics — cache
  // ledger, retry rounds, metering, parallel fan-out — reach async
  // callers unchanged. Same requests, same results, same stats.
  const AccessPattern keyed = AccessPattern::MustParse("io");
  // A repeated key so the cache has something to dedup inside the wave.
  const std::vector<std::string> keys = {"b", "d", "b"};
  // combo bits: 1 = cache, 2 = retry (+ injected failures), 4 = metering.
  for (std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
    for (int combo = 0; combo < 8; ++combo) {
      SCOPED_TRACE("parallelism=" + std::to_string(parallelism) +
                   " combo=" + std::to_string(combo));
      RuntimeOptions runtime;
      runtime.cache = (combo & 1) != 0;
      runtime.retry = (combo & 2) != 0;
      runtime.retry_policy.max_attempts = 3;
      runtime.metering = (combo & 4) != 0;
      runtime.parallelism = parallelism;

      FaultPlan faults;
      faults.latency_micros = 100;
      if (runtime.retry) faults.fail_first_per_key = 1;

      RuntimeStats sync_stats, async_stats;
      std::vector<FetchResult> sync_results, async_results;
      for (bool use_async : {false, true}) {
        DatabaseSource backend(&db_, &catalog_);
        FaultInjectingSource flaky(&backend, faults);
        SourceStack stack(&flaky, runtime);
        if (use_async) {
          FetchFuture future =
              stack.source()->FetchBatchAsync("T", keyed, Probes(keys));
          async_results = future.Take();
          async_stats = stack.stats();
        } else {
          sync_results = stack.source()->FetchBatch("T", keyed, Probes(keys));
          sync_stats = stack.stats();
        }
      }
      ExpectSameResults(async_results, sync_results);
      EXPECT_EQ(async_stats.source_calls, sync_stats.source_calls);
      EXPECT_EQ(async_stats.tuples_fetched, sync_stats.tuples_fetched);
      EXPECT_EQ(async_stats.cache_hits, sync_stats.cache_hits);
      EXPECT_EQ(async_stats.cache_misses, sync_stats.cache_misses);
      EXPECT_EQ(async_stats.retries, sync_stats.retries);
      EXPECT_EQ(async_stats.batched_requests, sync_stats.batched_requests);
    }
  }
}

TEST_F(SourceAsyncTest, InterleavedFuturesMatchSequentialBatches) {
  // Two waves staged before either resolves: taking them in issue order
  // must behave exactly like two sequential FetchBatch calls — including
  // the cache warm-up the first wave performs for the second.
  RuntimeOptions runtime;
  runtime.cache = true;
  runtime.metering = true;

  DatabaseSource sequential_backend(&db_, &catalog_);
  SourceStack sequential(&sequential_backend, runtime);
  std::vector<FetchResult> first_sync = sequential.source()->FetchBatch(
      "R", AccessPattern::MustParse("oo"), ScanRequest(2));
  std::vector<FetchResult> second_sync = sequential.source()->FetchBatch(
      "R", AccessPattern::MustParse("oo"), ScanRequest(2));

  DatabaseSource interleaved_backend(&db_, &catalog_);
  SourceStack interleaved(&interleaved_backend, runtime);
  FetchFuture first = interleaved.source()->FetchBatchAsync(
      "R", AccessPattern::MustParse("oo"), ScanRequest(2));
  FetchFuture second = interleaved.source()->FetchBatchAsync(
      "R", AccessPattern::MustParse("oo"), ScanRequest(2));
  ExpectSameResults(first.Take(), first_sync);
  ExpectSameResults(second.Take(), second_sync);

  EXPECT_EQ(interleaved.stats().source_calls, 1u);  // 2nd wave was a hit
  EXPECT_EQ(interleaved.stats().cache_hits, sequential.stats().cache_hits);
  EXPECT_EQ(interleaved.stats().cache_misses,
            sequential.stats().cache_misses);
}

TEST_F(SourceAsyncTest, AsyncErrorsCarryTheStatusChannel) {
  // A wave that exhausts its budget reports kBudgetExhausted per request
  // through the future, never by throwing or aborting.
  RuntimeOptions runtime;
  runtime.budget.max_calls = 1;
  DatabaseSource backend(&db_, &catalog_);
  SourceStack stack(&backend, runtime);
  FetchFuture future = stack.source()->FetchBatchAsync(
      "T", AccessPattern::MustParse("io"), Probes({"b", "d"}));
  std::vector<FetchResult> results = future.Take();
  ASSERT_EQ(results.size(), 2u);
  EXPECT_TRUE(results[0].ok());
  EXPECT_EQ(results[1].status, FetchStatus::kBudgetExhausted);
  EXPECT_NE(results[1].error.find("budget"), std::string::npos);
}

}  // namespace
}  // namespace ucqn
