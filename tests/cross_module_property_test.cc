// Cross-module properties tying the extensions to the core guarantees:
//
//  * a feasible query's compiled overestimate IS an equivalent executable
//    rewriting — executing it matches the oracle on random instances,
//  * constraint pruning preserves answers on every instance satisfying
//    the constraints,
//  * derived view patterns are monotone ("bound is easier") and sound —
//    a supported pattern really can be executed for concrete parameters,
//  * the caching adapter is semantically transparent,
//  * CQ¬/UCQ¬ minimization is equivalence-preserving and idempotent.

#include <gtest/gtest.h>

#include <random>

#include "ast/parser.h"
#include "constraints/inclusion.h"
#include "containment/minimize.h"
#include "eval/executor.h"
#include "eval/oracle.h"
#include "eval/source_adapters.h"
#include "feasibility/compile.h"
#include "feasibility/view_patterns.h"
#include "gen/random_instance.h"
#include "gen/random_query.h"
#include "runtime/caching_source.h"

namespace ucqn {
namespace {

class CompiledRewritingTest : public ::testing::TestWithParam<int> {};

TEST_P(CompiledRewritingTest, FeasibleOverPlanMatchesOracle) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 71 + 9);
  RandomSchemaOptions schema_options;
  schema_options.input_slot_prob = 0.4;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 3;
  options.negation_prob = 0.25;
  options.head_arity = 1;
  RandomInstanceOptions instance_options;
  instance_options.domain_size = 5;
  int feasible_seen = 0;
  for (int i = 0; i < 20 && feasible_seen < 8; ++i) {
    UnionQuery q = RandomUcq(&rng, catalog, options, 2);
    CompileResult compiled = Compile(q, catalog);
    if (!compiled.feasible) continue;
    ++feasible_seen;
    Database db = RandomDatabase(&rng, catalog, instance_options);
    DatabaseSource source(&db, &catalog);
    UnionQuery plan;
    for (const CompiledRule& rule : compiled.over) plan.AddDisjunct(rule.rule);
    ExecutionResult result = Execute(plan, catalog, &source);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.tuples, OracleEvaluate(q, db)) << q.ToString();
  }
  EXPECT_GT(feasible_seen, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, CompiledRewritingTest, ::testing::Range(0, 8));

class ConstraintPruningTest : public ::testing::TestWithParam<int> {};

TEST_P(ConstraintPruningTest, PruningPreservesAnswersOnLegalInstances) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 37 + 1);
  Catalog catalog = Catalog::MustParse("R/2: oo\nS/1: o\nT/2: oo\n");
  ConstraintSet constraints = ConstraintSet::MustParse("R[1] c= S[0]");
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 3;
  options.negation_prob = 0.4;
  options.head_arity = 1;
  RandomInstanceOptions instance_options;
  instance_options.domain_size = 5;
  for (int i = 0; i < 12; ++i) {
    UnionQuery q = RandomUcq(&rng, catalog, options, 2);
    UnionQuery pruned = PruneWithConstraints(q, constraints);
    Database db = RandomDatabaseWithInclusion(&rng, catalog,
                                              instance_options, "R", 1,
                                              "S", 0);
    ASSERT_TRUE(constraints.HoldsIn(db));
    EXPECT_EQ(OracleEvaluate(pruned, db), OracleEvaluate(q, db))
        << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConstraintPruningTest, ::testing::Range(0, 6));

class ViewPatternPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ViewPatternPropertyTest, SupportedPatternsAreUpwardClosed) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 91 + 4);
  RandomSchemaOptions schema_options;
  schema_options.input_slot_prob = 0.55;
  schema_options.full_scan_prob = 0.25;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 3;
  options.head_arity = 2;
  for (int i = 0; i < 6; ++i) {
    UnionQuery view = RandomUcq(&rng, catalog, options, 2);
    std::vector<AccessPattern> supported =
        SupportedHeadPatterns(view, catalog);
    // Upward closure: adding inputs to a supported pattern stays supported.
    for (const AccessPattern& p : supported) {
      for (std::size_t j = 0; j < p.arity(); ++j) {
        if (p.IsInputSlot(j)) continue;
        std::string word = p.word();
        word[j] = 'i';
        AccessPattern stronger = AccessPattern::MustParse(word);
        EXPECT_NE(std::find(supported.begin(), supported.end(), stronger),
                  supported.end())
            << view.ToString() << "\npattern " << p.word() << " -> "
            << stronger.word();
      }
    }
    // Consistency with the direct test.
    for (const AccessPattern& p : supported) {
      EXPECT_TRUE(FeasibleWithHeadPattern(view, catalog, p));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ViewPatternPropertyTest,
                         ::testing::Range(0, 5));

class AdapterTransparencyTest : public ::testing::TestWithParam<int> {};

TEST_P(AdapterTransparencyTest, CachingDoesNotChangeAnswers) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 19 + 8);
  RandomSchemaOptions schema_options;
  schema_options.input_slot_prob = 0.35;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 3;
  options.negation_prob = 0.3;
  options.head_arity = 1;
  RandomInstanceOptions instance_options;
  for (int i = 0; i < 8; ++i) {
    UnionQuery q = RandomUcq(&rng, catalog, options, 2);
    PlanStarResult plans = PlanStar(q, catalog);
    Database db = RandomDatabase(&rng, catalog, instance_options);
    DatabaseSource plain(&db, &catalog);
    ExecutionResult direct = Execute(plans.over, catalog, &plain);
    DatabaseSource backend(&db, &catalog);
    CachingSource cached(&backend);
    ExecutionResult through_cache = Execute(plans.over, catalog, &cached);
    ASSERT_TRUE(direct.ok && through_cache.ok);
    EXPECT_EQ(direct.tuples, through_cache.tuples) << q.ToString();
    EXPECT_LE(backend.stats().calls, plain.stats().calls);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AdapterTransparencyTest,
                         ::testing::Range(0, 5));

class MinimizationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(MinimizationPropertyTest, MinimizeUcqnPreservesEquivalence) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 59 + 13);
  RandomSchemaOptions schema_options;
  schema_options.num_relations = 4;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 2;  // small pool => plenty of redundancy
  options.negation_prob = 0.3;
  options.head_arity = 1;
  for (int i = 0; i < 6; ++i) {
    UnionQuery q = RandomUcq(&rng, catalog, options, 3);
    UnionQuery m = MinimizeUcqn(q);
    EXPECT_TRUE(Contained(m, q)) << q.ToString();
    EXPECT_TRUE(Contained(q, m)) << q.ToString();
    EXPECT_LE(m.size(), q.size());
    // Idempotent.
    EXPECT_EQ(MinimizeUcqn(m), m) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizationPropertyTest,
                         ::testing::Range(0, 5));

class NormalizationPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NormalizationPropertyTest, NormalizedCatalogPreservesVerdicts) {
  // Dominated patterns never affect answerability/orderability/
  // feasibility ("bound is easier"): the verdicts must be identical on
  // the normalized catalog.
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 103 + 17);
  RandomSchemaOptions schema_options;
  schema_options.patterns_per_relation = 4;  // plenty of dominance
  schema_options.input_slot_prob = 0.5;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  Catalog normalized = catalog.Normalized();
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 3;
  options.negation_prob = 0.3;
  options.head_arity = 1;
  for (int i = 0; i < 10; ++i) {
    UnionQuery q = RandomUcq(&rng, catalog, options, 2);
    EXPECT_EQ(IsFeasible(q, catalog), IsFeasible(q, normalized))
        << q.ToString() << "\ncatalog:\n" << catalog.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, NormalizationPropertyTest,
                         ::testing::Range(0, 6));

class RoundTripPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RoundTripPropertyTest, RandomQueriesSurviveTextRoundTrip) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 211 + 29);
  Catalog catalog = RandomCatalog(&rng, {});
  RandomQueryOptions options;
  options.num_literals = 4;
  options.num_variables = 3;
  options.negation_prob = 0.3;
  options.constant_prob = 0.15;
  options.head_arity = 2;
  for (int i = 0; i < 20; ++i) {
    ConjunctiveQuery q = RandomCq(&rng, catalog, options);
    EXPECT_EQ(MustParseRule(q.ToString()), q) << q.ToString();
  }
  // Catalogs too.
  EXPECT_EQ(Catalog::MustParse(catalog.ToString()).ToString(),
            catalog.ToString());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RoundTripPropertyTest, ::testing::Range(0, 5));

}  // namespace
}  // namespace ucqn
