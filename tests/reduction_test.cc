#include "feasibility/reduction.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "containment/ucqn_containment.h"
#include "feasibility/feasible.h"
#include "gen/random_query.h"

namespace ucqn {
namespace {

// Verifies the defining property of the Theorem 18 reduction on one pair.
void CheckTheorem18(const UnionQuery& P, const UnionQuery& Q) {
  FeasibilityInstance instance = ReduceContainmentToFeasibility(P, Q);
  const bool contained = Contained(P, Q);
  const bool feasible = IsFeasible(instance.query, instance.catalog);
  EXPECT_EQ(contained, feasible)
      << "P:\n" << P.ToString() << "\nQ:\n" << Q.ToString()
      << "\nreduced:\n" << instance.query.ToString();
}

TEST(Theorem18ReductionTest, ContainedPair) {
  CheckTheorem18(MustParseUnionQuery("Q(x) :- R(x), S(x)."),
                 MustParseUnionQuery("Q(x) :- R(x)."));
}

TEST(Theorem18ReductionTest, NotContainedPair) {
  CheckTheorem18(MustParseUnionQuery("Q(x) :- R(x)."),
                 MustParseUnionQuery("Q(x) :- R(x), S(x)."));
}

TEST(Theorem18ReductionTest, UnionPairWithNegation) {
  CheckTheorem18(MustParseUnionQuery(R"(
                   Q(x) :- R(x), S(x).
                   Q(x) :- R(x), not S(x).
                 )"),
                 MustParseUnionQuery("Q(x) :- R(x)."));
  CheckTheorem18(MustParseUnionQuery("Q(x) :- R(x)."),
                 MustParseUnionQuery(R"(
                   Q(x) :- R(x), S(x).
                   Q(x) :- R(x), not S(x).
                 )"));
}

TEST(Theorem18ReductionTest, StructureMatchesPaper) {
  UnionQuery P = MustParseUnionQuery("Q(x) :- R(x).");
  UnionQuery Q = MustParseUnionQuery("Q(x) :- S(x).");
  FeasibilityInstance instance = ReduceContainmentToFeasibility(P, Q);
  // Q' = P,B(y) ∨ Q: two disjuncts.
  ASSERT_EQ(instance.query.size(), 2u);
  // First disjunct carries the fresh input-only relation.
  const ConjunctiveQuery& primed = instance.query.disjuncts()[0];
  ASSERT_EQ(primed.body().size(), 2u);
  const std::string b_name = primed.body()[1].relation();
  const RelationSchema* b = instance.catalog.Find(b_name);
  ASSERT_NE(b, nullptr);
  ASSERT_EQ(b->patterns().size(), 1u);
  EXPECT_EQ(b->patterns()[0].word(), "i");
  // Original relations got all-output patterns.
  EXPECT_TRUE(instance.catalog.Find("R")->HasFullScanPattern());
  EXPECT_TRUE(instance.catalog.Find("S")->HasFullScanPattern());
}

TEST(Theorem18ReductionTest, FreshNamesAvoidCollisions) {
  // P already uses relation "B_" and variable "y_": fresh names must dodge.
  UnionQuery P = MustParseUnionQuery("Q(x) :- B_(x), R(x, y_).");
  UnionQuery Q = MustParseUnionQuery("Q(x) :- B_(x).");
  FeasibilityInstance instance = ReduceContainmentToFeasibility(P, Q);
  const ConjunctiveQuery& primed = instance.query.disjuncts()[0];
  const Literal& guard = primed.body().back();
  EXPECT_NE(guard.relation(), "B_");
  EXPECT_NE(guard.args()[0], Term::Variable("y_"));
  CheckTheorem18(P, Q);
}

TEST(Theorem18ReductionTest, HeadsAreUnified) {
  UnionQuery P = MustParseUnionQuery("Answer(x) :- R(x).");
  UnionQuery Q = MustParseUnionQuery("Other(z) :- R(z).");
  FeasibilityInstance instance = ReduceContainmentToFeasibility(P, Q);
  EXPECT_EQ(instance.query.head_name(), "Answer");
  CheckTheorem18(P, Q);
}

void CheckProposition20(const ConjunctiveQuery& P, const ConjunctiveQuery& Q) {
  FeasibilityInstance instance = ReduceCqnContainmentToFeasibility(P, Q);
  ASSERT_EQ(instance.query.size(), 1u);  // stays within CQ¬
  const bool contained = Contained(P, UnionQuery(Q));
  const bool feasible = IsFeasible(instance.query, instance.catalog);
  EXPECT_EQ(contained, feasible)
      << "P: " << P.ToString() << "\nQ: " << Q.ToString()
      << "\nL: " << instance.query.ToString();
}

TEST(Proposition20ReductionTest, ContainedPositivePair) {
  CheckProposition20(MustParseRule("Q(x) :- R(x), S(x)."),
                     MustParseRule("Q(x) :- R(x)."));
}

TEST(Proposition20ReductionTest, NotContainedPositivePair) {
  CheckProposition20(MustParseRule("Q(x) :- R(x)."),
                     MustParseRule("Q(x) :- R(x), S(x)."));
}

TEST(Proposition20ReductionTest, NegationPairs) {
  CheckProposition20(MustParseRule("Q(x) :- R(x), not S(x)."),
                     MustParseRule("Q(x) :- R(x), not S(x)."));
  CheckProposition20(MustParseRule("Q(x) :- R(x), S(x)."),
                     MustParseRule("Q(x) :- R(x), not S(x)."));
  CheckProposition20(MustParseRule("Q(x) :- R(x), not S(x), not T(x)."),
                     MustParseRule("Q(x) :- R(x), not S(x)."));
  CheckProposition20(MustParseRule("Q(x) :- R(x), not S(x)."),
                     MustParseRule("Q(x) :- R(x), not S(x), not T(x)."));
}

TEST(Proposition20ReductionTest, DifferentVariableNamesAlign) {
  CheckProposition20(MustParseRule("Q(a, b) :- R(a, b), S(b)."),
                     MustParseRule("Q(u, v) :- R(u, v)."));
}

TEST(Proposition20ReductionTest, SharedRelationsPrimedConsistently) {
  ConjunctiveQuery P = MustParseRule("Q(x) :- R(x), S(x).");
  ConjunctiveQuery Q = MustParseRule("Q(x) :- R(x).");
  FeasibilityInstance instance = ReduceCqnContainmentToFeasibility(P, Q);
  const ConjunctiveQuery& L = instance.query.disjuncts()[0];
  // Body: T(u), R'(u,x), S'(u,x), R'(v,x) — R primed the same both times.
  ASSERT_EQ(L.body().size(), 4u);
  EXPECT_EQ(L.body()[1].relation(), L.body()[3].relation());
}

// Property sweep: the reductions must be answer-preserving on random
// negation-free pairs (where containment is cheap to double-check).
class ReductionPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ReductionPropertyTest, Theorem18OnRandomPairs) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 77);
  RandomSchemaOptions schema_options;
  schema_options.num_relations = 4;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 3;
  options.head_arity = 1;
  for (int i = 0; i < 5; ++i) {
    UnionQuery P = RandomUcq(&rng, catalog, options, 2);
    UnionQuery Q = RandomUcq(&rng, catalog, options, 2);
    CheckTheorem18(P, Q);
  }
}

TEST_P(ReductionPropertyTest, Proposition20OnRandomPairs) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 777);
  RandomSchemaOptions schema_options;
  schema_options.num_relations = 3;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 3;
  options.head_arity = 1;
  options.negation_prob = 0.3;
  for (int i = 0; i < 5; ++i) {
    ConjunctiveQuery P = RandomCq(&rng, catalog, options);
    ConjunctiveQuery Q = RandomCq(&rng, catalog, options);
    if (P.head_arity() != Q.head_arity()) continue;
    CheckProposition20(P, Q);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReductionPropertyTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace ucqn
