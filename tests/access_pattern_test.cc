#include "schema/access_pattern.h"

#include <gtest/gtest.h>

namespace ucqn {
namespace {

TEST(AccessPatternTest, FromStringValid) {
  std::optional<AccessPattern> p = AccessPattern::FromString("ioo");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->arity(), 3u);
  EXPECT_TRUE(p->IsInputSlot(0));
  EXPECT_TRUE(p->IsOutputSlot(1));
  EXPECT_TRUE(p->IsOutputSlot(2));
  EXPECT_EQ(p->word(), "ioo");
}

TEST(AccessPatternTest, FromStringInvalid) {
  EXPECT_FALSE(AccessPattern::FromString("iox").has_value());
  EXPECT_FALSE(AccessPattern::FromString("IO").has_value());
  EXPECT_FALSE(AccessPattern::FromString("1o").has_value());
}

TEST(AccessPatternTest, EmptyWordIsZeroAry) {
  std::optional<AccessPattern> p = AccessPattern::FromString("");
  ASSERT_TRUE(p.has_value());
  EXPECT_EQ(p->arity(), 0u);
  EXPECT_FALSE(p->HasInputs());
}

TEST(AccessPatternTest, SlotLists) {
  AccessPattern p = AccessPattern::MustParse("ioio");
  EXPECT_EQ(p.InputSlots(), (std::vector<std::size_t>{0, 2}));
  EXPECT_EQ(p.OutputSlots(), (std::vector<std::size_t>{1, 3}));
  EXPECT_EQ(p.InputCount(), 2u);
  EXPECT_TRUE(p.HasInputs());
}

TEST(AccessPatternTest, Factories) {
  EXPECT_EQ(AccessPattern::AllOutput(3).word(), "ooo");
  EXPECT_EQ(AccessPattern::AllInput(2).word(), "ii");
  EXPECT_FALSE(AccessPattern::AllOutput(4).HasInputs());
  EXPECT_EQ(AccessPattern::AllInput(2).InputCount(), 2u);
}

TEST(AccessPatternTest, ComparisonOperators) {
  EXPECT_EQ(AccessPattern::MustParse("io"), AccessPattern::MustParse("io"));
  EXPECT_NE(AccessPattern::MustParse("io"), AccessPattern::MustParse("oi"));
  EXPECT_LT(AccessPattern::MustParse("ii"), AccessPattern::MustParse("io"));
}

}  // namespace
}  // namespace ucqn
