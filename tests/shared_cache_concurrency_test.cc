// Cross-execution behaviour of the SharedCacheStore under real threads
// (labelled `concurrency`, so the tsan preset runs it): the single-flight
// protocol coalesces concurrent misses onto one physical call, abandoned
// flights fall back cleanly instead of deadlocking or pinning failures,
// and two executions racing on one store produce byte-identical answers
// with no torn tuples and no duplicate transport calls.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "ast/parser.h"
#include "eval/answer_star.h"
#include "eval/source.h"
#include "runtime/caching_source.h"
#include "runtime/shared_cache.h"
#include "runtime/source_stack.h"

namespace ucqn {
namespace {

// Spins (with 1ms naps) until `pred` holds; false after ~10s. Assertions
// on the result stay at the call site so a timeout aborts the test.
bool Await(const std::function<bool()>& pred) {
  for (int i = 0; i < 10000; ++i) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  return false;
}

// Parks every Fetch on a gate until Open(), so a test can hold a
// single-flight leader mid-call while a follower registers. Optionally
// fails the first call that passes the gate (the abandon path).
class GatedSource : public Source {
 public:
  explicit GatedSource(Source* inner, bool fail_first = false)
      : inner_(inner), fail_first_(fail_first) {}

  FetchResult Fetch(
      const std::string& relation, const AccessPattern& pattern,
      const std::vector<std::optional<Term>>& inputs) override {
    {
      std::unique_lock<std::mutex> lock(mu_);
      ++arrivals_;
      cv_.wait(lock, [&] { return open_; });
    }
    if (fail_first_ && passed_.fetch_add(1) == 0) {
      return FetchResult::TransientError("injected leader failure");
    }
    return inner_->Fetch(relation, pattern, inputs);
  }

  void Open() {
    std::lock_guard<std::mutex> lock(mu_);
    open_ = true;
    cv_.notify_all();
  }
  int arrivals() {
    std::lock_guard<std::mutex> lock(mu_);
    return arrivals_;
  }

 private:
  Source* inner_;
  bool fail_first_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool open_ = false;
  int arrivals_ = 0;
  std::atomic<int> passed_{0};
};

class SharedCacheConcurrencyTest : public ::testing::Test {
 protected:
  SharedCacheConcurrencyTest() {
    catalog_ = Catalog::MustParse("R/2: oo io\nS/1: o\n");
    db_ = Database::MustParseFacts(R"(
      R("a", "b").
      R("c", "d").
      S("b").
    )");
  }

  Catalog catalog_;
  Database db_;
};

TEST_F(SharedCacheConcurrencyTest, ConcurrentMissesCoalesceToOneCall) {
  DatabaseSource backend(&db_, &catalog_);
  GatedSource gated(&backend);
  SharedCacheStore store;
  CachingSource view_a(&gated, store);
  CachingSource view_b(&gated, store);
  const AccessPattern scan = AccessPattern::MustParse("oo");

  std::vector<Tuple> got_a;
  std::thread leader([&] {
    got_a = view_a.FetchOrDie("R", scan, {std::nullopt, std::nullopt});
  });
  // The leader is now parked inside the transport, holding the flight.
  ASSERT_TRUE(Await([&] { return gated.arrivals() == 1; }));

  std::vector<Tuple> got_b;
  std::thread follower([&] {
    got_b = view_b.FetchOrDie("R", scan, {std::nullopt, std::nullopt});
  });
  // The follower has coalesced onto the flight (ledger-observable) and is
  // blocked in WaitForFlight — it never reached the transport.
  ASSERT_TRUE(Await([&] { return store.stats().flight_waits == 1; }));
  EXPECT_EQ(gated.arrivals(), 1);

  gated.Open();
  leader.join();
  follower.join();

  EXPECT_EQ(backend.stats().calls, 1u);  // one physical call for two queries
  EXPECT_EQ(got_a, got_b);
  EXPECT_EQ(got_a.size(), 2u);
  EXPECT_EQ(view_a.cache_stats().misses, 1u);
  EXPECT_EQ(view_b.cache_stats().misses, 0u);
  EXPECT_EQ(view_b.cache_stats().hits, 1u);
  EXPECT_EQ(view_b.cache_stats().flight_waits, 1u);
  const SharedCacheStore::Stats totals = store.stats();
  EXPECT_EQ(totals.misses, 1u);
  EXPECT_EQ(totals.hits, 1u);
  EXPECT_EQ(totals.inserts, 1u);
  EXPECT_EQ(totals.entries, 1u);
}

TEST_F(SharedCacheConcurrencyTest, FollowerSurvivesAnAbandonedFlight) {
  DatabaseSource backend(&db_, &catalog_);
  GatedSource gated(&backend, /*fail_first=*/true);
  SharedCacheStore store;
  CachingSource view_a(&gated, store);
  CachingSource view_b(&gated, store);
  const AccessPattern scan = AccessPattern::MustParse("o");

  FetchResult leader_result;
  std::thread leader(
      [&] { leader_result = view_a.Fetch("S", scan, {std::nullopt}); });
  ASSERT_TRUE(Await([&] { return gated.arrivals() == 1; }));

  FetchResult follower_result;
  std::thread follower(
      [&] { follower_result = view_b.Fetch("S", scan, {std::nullopt}); });
  ASSERT_TRUE(Await([&] { return store.stats().flight_waits == 1; }));

  gated.Open();
  leader.join();
  follower.join();

  // The leader's call failed and was abandoned — not cached, not pinned.
  EXPECT_FALSE(leader_result.ok());
  // The follower woke, found no result, and fetched for itself.
  ASSERT_TRUE(follower_result.ok());
  EXPECT_EQ(follower_result.tuples.size(), 1u);
  EXPECT_EQ(gated.arrivals(), 2);  // failed leader call + follower's own
  EXPECT_EQ(view_b.cache_stats().misses, 1u);
  EXPECT_EQ(store.size(), 1u);  // the follower's success was published
  // A third lookup is a plain hit.
  CachingSource view_c(&gated, store);
  view_c.FetchOrDie("S", scan, {std::nullopt});
  EXPECT_EQ(view_c.cache_stats().hits, 1u);
}

TEST_F(SharedCacheConcurrencyTest, ConcurrentQueriesShareOneStoreExactly) {
  // The tentpole scenario: two overlapping queries run concurrently, each
  // through its own SourceStack, over one process-wide store. Answers
  // must match the sequential baseline (no torn tuples) and the backend
  // must see exactly one call per distinct key (single-flight + reuse).
  const UnionQuery q1 = MustParseUnionQuery("Q(x) :- R(x, z), not S(z).");
  const UnionQuery q2 = MustParseUnionQuery("P(x) :- R(x, z), S(z).");
  RuntimeOptions runtime;

  // Sequential baseline over a fresh store: its physical-call total is the
  // number of distinct keys the two queries touch.
  DatabaseSource baseline_backend(&db_, &catalog_);
  SharedCacheStore baseline_store;
  runtime.shared_cache = &baseline_store;
  SourceStack baseline_s1(&baseline_backend, runtime);
  const AnswerStarReport base1 = AnswerStar(q1, catalog_, baseline_s1.source());
  SourceStack baseline_s2(&baseline_backend, runtime);
  const AnswerStarReport base2 = AnswerStar(q2, catalog_, baseline_s2.source());
  ASSERT_TRUE(base1.ok && base2.ok);
  const std::uint64_t distinct_keys = baseline_backend.stats().calls;

  DatabaseSource backend(&db_, &catalog_);
  SharedCacheStore store;
  runtime.shared_cache = &store;
  AnswerStarReport report1;
  AnswerStarReport report2;
  std::thread t1([&] {
    SourceStack stack(&backend, runtime);
    report1 = AnswerStar(q1, catalog_, stack.source());
  });
  std::thread t2([&] {
    SourceStack stack(&backend, runtime);
    report2 = AnswerStar(q2, catalog_, stack.source());
  });
  t1.join();
  t2.join();

  ASSERT_TRUE(report1.ok && report2.ok);
  EXPECT_EQ(report1.under, base1.under);
  EXPECT_EQ(report1.over, base1.over);
  EXPECT_EQ(report2.under, base2.under);
  EXPECT_EQ(report2.over, base2.over);
  EXPECT_EQ(backend.stats().calls, distinct_keys);
  const SharedCacheStore::Stats totals = store.stats();
  EXPECT_EQ(totals.misses, distinct_keys);
  EXPECT_EQ(totals.entries, distinct_keys);
}

TEST_F(SharedCacheConcurrencyTest, ConcurrentBatchesShareLeaders) {
  // Two executions issue the same wave concurrently through FetchBatch.
  // Each thread publishes its own leaders before waiting on keys led by
  // the other (the cross-wave deadlock-avoidance ordering), so however the
  // leaderships interleave, every key reaches the transport exactly once.
  Catalog catalog = Catalog::MustParse("K/2: io\n");
  std::string facts;
  for (int i = 0; i < 10; ++i) {
    const std::string n = std::to_string(i);
    facts += "K(\"k" + n + "\", \"v" + n + "\").\n";
  }
  Database db = Database::MustParseFacts(facts);
  DatabaseSource backend(&db, &catalog);
  SharedCacheStore store;
  const AccessPattern keyed = AccessPattern::MustParse("io");
  std::vector<std::vector<std::optional<Term>>> wave;
  for (int i = 0; i < 10; ++i) {
    wave.push_back({Term::Constant("k" + std::to_string(i)), std::nullopt});
  }

  std::atomic<int> bad_results{0};
  auto run = [&] {
    CachingSource view(&backend, store);
    const std::vector<FetchResult> results =
        view.FetchBatch("K", keyed, wave);
    for (std::size_t i = 0; i < results.size(); ++i) {
      if (!results[i].ok() || results[i].tuples.size() != 1) ++bad_results;
    }
  };
  std::thread t1(run);
  std::thread t2(run);
  t1.join();
  t2.join();

  EXPECT_EQ(bad_results.load(), 0);
  EXPECT_EQ(backend.stats().calls, 10u);
  EXPECT_EQ(store.size(), 10u);
}

TEST_F(SharedCacheConcurrencyTest, HammerOverlappingKeysNoTornTuples) {
  // Four threads cycle through an overlapping key set, each starting at a
  // different offset. Every fetched result must equal the backend's
  // ground truth (a torn or cross-wired entry would differ), and every
  // distinct key must hit the transport exactly once process-wide.
  Catalog catalog = Catalog::MustParse("K/2: io\n");
  std::string facts;
  for (int i = 0; i < 20; ++i) {
    const std::string n = std::to_string(i);
    facts += "K(\"k" + n + "\", \"v" + n + "\").\n";
  }
  Database db = Database::MustParseFacts(facts);
  DatabaseSource backend(&db, &catalog);
  const AccessPattern keyed = AccessPattern::MustParse("io");

  std::vector<std::vector<Tuple>> expected;
  {
    DatabaseSource oracle(&db, &catalog);
    for (int i = 0; i < 20; ++i) {
      expected.push_back(oracle.FetchOrDie(
          "K", keyed, {Term::Constant("k" + std::to_string(i)), std::nullopt}));
    }
  }

  SharedCacheStore store;
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      CachingSource view(&backend, store);
      for (int pass = 0; pass < 3; ++pass) {
        for (int i = 0; i < 20; ++i) {
          const int j = (i + 5 * t) % 20;
          const std::vector<Tuple> got = view.FetchOrDie(
              "K", keyed,
              {Term::Constant("k" + std::to_string(j)), std::nullopt});
          if (got != expected[j]) ++mismatches;
        }
      }
    });
  }
  for (std::thread& t : threads) t.join();

  EXPECT_EQ(mismatches.load(), 0);
  EXPECT_EQ(backend.stats().calls, 20u);  // one physical call per key, ever
  const SharedCacheStore::Stats totals = store.stats();
  EXPECT_EQ(totals.hits + totals.misses, 4u * 3u * 20u);
  EXPECT_EQ(totals.entries, 20u);
}

}  // namespace
}  // namespace ucqn
