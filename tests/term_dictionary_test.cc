// Unit tests for the term dictionary: id lifecycle, the reserved Δ-null
// sentinel, encode/decode roundtrips, and the columnar frontier built on
// top of the ids.

#include "dict/term_dictionary.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ast/term.h"
#include "eval/frontier.h"

namespace ucqn {
namespace {

TEST(TermDictionaryTest, InternIsStableAndDense) {
  TermDictionary dict;
  EXPECT_EQ(dict.size(), 1u);  // the reserved null slot

  const std::uint32_t a = dict.Intern("a");
  const std::uint32_t b = dict.Intern("b");
  EXPECT_EQ(a, 1u);  // constants are consecutive, starting after Δ-null
  EXPECT_EQ(b, 2u);
  EXPECT_EQ(dict.Intern("a"), a);  // re-intern returns the same id forever
  EXPECT_EQ(dict.size(), 3u);

  EXPECT_EQ(dict.Decode(a), "a");
  EXPECT_EQ(dict.Decode(b), "b");
}

TEST(TermDictionaryTest, FindNeverInserts) {
  TermDictionary dict;
  EXPECT_EQ(dict.Find("ghost"), TermDictionary::kAbsentId);
  EXPECT_EQ(dict.size(), 1u);
  const std::uint32_t id = dict.Intern("ghost");
  EXPECT_EQ(dict.Find("ghost"), id);
}

TEST(TermDictionaryTest, NullSentinelIsDistinctFromTheConstantNull) {
  TermDictionary dict;
  // Δ-null owns id 0; the constant *spelled* "null" is an ordinary
  // constant with its own id (Ex. 7's null is a distinguished value,
  // not a string).
  EXPECT_EQ(dict.EncodeGround(Term::Null()), TermDictionary::kNullId);
  const std::uint32_t spelled = dict.Intern("null");
  EXPECT_NE(spelled, TermDictionary::kNullId);

  EXPECT_TRUE(dict.DecodeTerm(TermDictionary::kNullId).IsNull());
  const Term decoded = dict.DecodeTerm(spelled);
  EXPECT_FALSE(decoded.IsNull());
  EXPECT_EQ(decoded, Term::Constant("null"));
}

TEST(TermDictionaryTest, EncodeGroundRoundTripsEveryGroundTerm) {
  TermDictionary dict;
  const std::vector<Term> ground = {
      Term::Constant("a"), Term::Constant(""), Term::Constant("needs \"q\""),
      Term::Null(), Term::Constant("null")};
  for (const Term& t : ground) {
    EXPECT_EQ(dict.DecodeTerm(dict.EncodeGround(t)), t) << t.ToString();
  }
}

TEST(TermDictionaryTest, EncodedTupleHashTreatsContentNotIdentity) {
  EncodedTupleHash hash;
  const EncodedTuple ab = {1, 2};
  EncodedTuple ab2 = {1, 2};
  EXPECT_EQ(hash(ab), hash(ab2));
  EXPECT_TRUE(ab == ab2);
  const EncodedTuple ba = {2, 1};
  EXPECT_FALSE(ab == ba);
}

TEST(ColumnarFrontierTest, DefaultIsTheUnitFrontier) {
  ColumnarFrontier frontier;
  EXPECT_EQ(frontier.rows(), 1u);
  EXPECT_EQ(frontier.width(), 0u);

  TermDictionary dict;
  const Substitution unit = frontier.DecodeRow(0, dict);
  EXPECT_TRUE(unit.map().empty());
}

TEST(ColumnarFrontierTest, ColumnsDecodeInWitnessOrder) {
  TermDictionary dict;
  const std::uint32_t a = dict.Intern("a");
  const std::uint32_t b = dict.Intern("b");
  const std::uint32_t c = dict.Intern("c");

  ColumnarFrontier frontier;
  frontier.AddVar("X");
  frontier.AddVar("Y");
  frontier.MutableColumn(0) = {a, a, b};
  frontier.MutableColumn(1) = {b, c, c};
  frontier.SetRows(3);

  const std::vector<Substitution> rows = frontier.DecodeAll(dict);
  ASSERT_EQ(rows.size(), 3u);
  EXPECT_EQ(*rows[0].Lookup(Term::Variable("X")), Term::Constant("a"));
  EXPECT_EQ(*rows[0].Lookup(Term::Variable("Y")), Term::Constant("b"));
  EXPECT_EQ(*rows[1].Lookup(Term::Variable("Y")), Term::Constant("c"));
  EXPECT_EQ(*rows[2].Lookup(Term::Variable("X")), Term::Constant("b"));
}

TEST(ColumnarFrontierTest, RetainCompactsBySelectionVector) {
  TermDictionary dict;
  ColumnarFrontier frontier;
  frontier.AddVar("X");
  frontier.MutableColumn(0) = {dict.Intern("a"), dict.Intern("b"),
                               dict.Intern("c"), dict.Intern("d")};
  frontier.SetRows(4);

  frontier.Retain({0, 2});  // the anti-join's surviving rows
  EXPECT_EQ(frontier.rows(), 2u);
  const std::vector<Substitution> rows = frontier.DecodeAll(dict);
  EXPECT_EQ(*rows[0].Lookup(Term::Variable("X")), Term::Constant("a"));
  EXPECT_EQ(*rows[1].Lookup(Term::Variable("X")), Term::Constant("c"));

  frontier.Retain({});  // empty selection = empty frontier
  EXPECT_EQ(frontier.rows(), 0u);
}

TEST(ColumnarFrontierTest, ColumnOfFindsVariablesByName) {
  ColumnarFrontier frontier;
  frontier.AddVar("X");
  frontier.AddVar("Y");
  EXPECT_EQ(frontier.ColumnOf("X"), 0u);
  EXPECT_EQ(frontier.ColumnOf("Y"), 1u);
  EXPECT_EQ(frontier.ColumnOf("Z"), ColumnarFrontier::kNoColumn);
}

}  // namespace
}  // namespace ucqn
