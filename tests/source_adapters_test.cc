#include "eval/source_adapters.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/answer_star.h"
#include "eval/executor.h"

namespace ucqn {
namespace {

class SourceAdaptersTest : public ::testing::Test {
 protected:
  SourceAdaptersTest() {
    catalog_ = Catalog::MustParse("R/2: oo io\nS/1: o\n");
    db_ = Database::MustParseFacts(R"(
      R("a", "b").
      R("c", "d").
      S("b").
    )");
  }

  Catalog catalog_;
  Database db_;
};

TEST_F(SourceAdaptersTest, IndexedSourceMatchesScanSource) {
  DatabaseSource scan(&db_, &catalog_);
  IndexedDatabaseSource indexed(&db_, &catalog_);
  const AccessPattern keyed = AccessPattern::MustParse("io");
  const AccessPattern full = AccessPattern::MustParse("oo");
  for (const char* value : {"a", "c", "missing"}) {
    std::vector<Tuple> a =
        scan.FetchOrDie("R", keyed, {Term::Constant(value), std::nullopt});
    std::vector<Tuple> b =
        indexed.FetchOrDie("R", keyed, {Term::Constant(value), std::nullopt});
    EXPECT_EQ(a, b) << value;
  }
  EXPECT_EQ(scan.FetchOrDie("R", full, {std::nullopt, std::nullopt}),
            indexed.FetchOrDie("R", full, {std::nullopt, std::nullopt}));
  // One index per (relation, pattern) pair touched.
  EXPECT_EQ(indexed.index_count(), 2u);
  EXPECT_EQ(indexed.stats().calls, 4u);
}

TEST_F(SourceAdaptersTest, IndexedSourceOnRandomWorkload) {
  // Differential check over a bigger instance and both executors.
  Database big;
  for (int i = 0; i < 300; ++i) {
    big.Insert("R", {Term::Constant("k" + std::to_string(i % 23)),
                     Term::Constant("v" + std::to_string(i % 7))});
    if (i % 3 == 0) big.Insert("S", {Term::Constant("v" + std::to_string(i % 7))});
  }
  DatabaseSource scan(&big, &catalog_);
  IndexedDatabaseSource indexed(&big, &catalog_);
  ConjunctiveQuery plan = MustParseRule("Q(x) :- R(x, z), not S(z).");
  ExecutionResult a = Execute(plan, catalog_, &scan);
  ExecutionResult b = Execute(plan, catalog_, &indexed);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.tuples, b.tuples);
  EXPECT_EQ(scan.stats().calls, indexed.stats().calls);
}

using SourceAdaptersDeathTest = SourceAdaptersTest;

TEST_F(SourceAdaptersDeathTest, IndexedSourceEnforcesContract) {
  IndexedDatabaseSource indexed(&db_, &catalog_);
  EXPECT_DEATH(indexed.Fetch("R", AccessPattern::MustParse("ii"),
                             {Term::Constant("a"), Term::Constant("b")}),
               "undeclared access pattern");
  EXPECT_DEATH(indexed.Fetch("R", AccessPattern::MustParse("io"),
                             {std::nullopt, std::nullopt}),
               "input slot requires a ground value");
  EXPECT_DEATH(indexed.Fetch("R", AccessPattern::MustParse("io"),
                             {Term::Constant("a")}),
               "one entry per declared slot");
}

TEST_F(SourceAdaptersTest, CompositeRoutesPerRelation) {
  // R and S live at different backends.
  Database r_db = Database::MustParseFacts("R(\"a\", \"b\").\n");
  Database s_db = Database::MustParseFacts("S(\"b\").\n");
  DatabaseSource r_source(&r_db, &catalog_);
  DatabaseSource s_source(&s_db, &catalog_);
  CompositeSource mediator;
  mediator.Route("R", &r_source);
  mediator.Route("S", &s_source);
  EXPECT_TRUE(mediator.HasRoute("R"));
  EXPECT_FALSE(mediator.HasRoute("T"));

  ExecutionResult result =
      Execute(MustParseRule("Q(x) :- R(x, z), S(z)."), catalog_, &mediator);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.tuples.size(), 1u);
  EXPECT_EQ(*result.tuples.begin(), (Tuple{Term::Constant("a")}));
  EXPECT_EQ(r_source.stats().calls, 1u);
  EXPECT_EQ(s_source.stats().calls, 1u);
}

TEST_F(SourceAdaptersTest, CompositeUnroutedRelationDies) {
  CompositeSource mediator;
  EXPECT_DEATH(
      mediator.Fetch("R", AccessPattern::MustParse("oo"),
                     {std::nullopt, std::nullopt}),
      "no route");
}

}  // namespace
}  // namespace ucqn
