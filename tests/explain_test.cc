#include "eval/explain.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "gen/scenarios.h"

namespace ucqn {
namespace {

TEST(ExplainDeltaTest, Example7PartialInstantiation) {
  // The paper's Example 7: Δ ∋ (a, null) reads as
  //   Q(a, y) :- not S("b"), R("a", "b"), B("a", y).
  Scenario s = Example7Nulls();
  DatabaseSource source(&s.database, &s.catalog);
  AnswerStarReport report = AnswerStar(s.query, s.catalog, &source);
  ASSERT_FALSE(report.complete);

  std::vector<DeltaExplanation> explanations =
      ExplainDelta(s.query, s.catalog, &source, report);
  ASSERT_EQ(explanations.size(), 1u);
  const DeltaExplanation& e = explanations[0];
  EXPECT_EQ(e.tuple, (Tuple{Term::Constant("a"), Term::Null()}));
  EXPECT_EQ(e.disjunct_index, 0u);
  const ConjunctiveQuery& pi = e.partially_instantiated;
  // Head: ("a", y) — the unknown y stays a variable, not a null.
  EXPECT_EQ(pi.head_terms()[0], Term::Constant("a"));
  EXPECT_TRUE(pi.head_terms()[1].IsVariable());
  // Body in the ORIGINAL order, with the witness b plugged in.
  ASSERT_EQ(pi.body().size(), 3u);
  EXPECT_EQ(pi.body()[0].ToString(), "not S(\"b\")");
  EXPECT_EQ(pi.body()[1].ToString(), "R(\"a\", \"b\")");
  EXPECT_EQ(pi.body()[2].relation(), "B");
  EXPECT_EQ(pi.body()[2].args()[0], Term::Constant("a"));
  EXPECT_TRUE(pi.body()[2].args()[1].IsVariable());
}

TEST(ExplainDeltaTest, CompleteAnswersNeedNoExplanations) {
  Scenario s = Example4UnderOver();  // runtime-complete despite infeasible
  DatabaseSource source(&s.database, &s.catalog);
  AnswerStarReport report = AnswerStar(s.query, s.catalog, &source);
  ASSERT_TRUE(report.complete);
  EXPECT_TRUE(ExplainDelta(s.query, s.catalog, &source, report).empty());
}

TEST(ExplainDeltaTest, EveryDeltaTupleGetsAtLeastOneExplanation) {
  for (const Scenario& s : AllScenarios()) {
    DatabaseSource source(&s.database, &s.catalog);
    AnswerStarReport report = AnswerStar(s.query, s.catalog, &source);
    std::vector<DeltaExplanation> explanations =
        ExplainDelta(s.query, s.catalog, &source, report);
    std::set<Tuple> explained;
    for (const DeltaExplanation& e : explanations) {
      EXPECT_TRUE(report.delta.count(e.tuple)) << s.name;
      explained.insert(e.tuple);
    }
    for (const Tuple& t : report.delta) {
      EXPECT_TRUE(explained.count(t))
          << s.name << ": unexplained Δ tuple " << TupleToString(t);
    }
  }
}

TEST(ExplainDeltaTest, MultipleWitnessesMultipleExplanations) {
  // Two R-witnesses produce the same null row; both readings surface.
  Catalog catalog = Catalog::MustParse("R/2: oo\nB/2: ii\n");
  UnionQuery q = MustParseUnionQuery("Q(x, y) :- R(x, z), B(x, y).");
  Database db = Database::MustParseFacts(R"(
    R("a", "b1").
    R("a", "b2").
  )");
  DatabaseSource source(&db, &catalog);
  AnswerStarReport report = AnswerStar(q, catalog, &source);
  ASSERT_EQ(report.delta.size(), 1u);  // (a, null)
  std::vector<DeltaExplanation> explanations =
      ExplainDelta(q, catalog, &source, report);
  EXPECT_EQ(explanations.size(), 2u);  // one per witness z = b1 / b2
  std::string rendered;
  for (const DeltaExplanation& e : explanations) rendered += e.ToString();
  EXPECT_NE(rendered.find("b1"), std::string::npos);
  EXPECT_NE(rendered.find("b2"), std::string::npos);
}

}  // namespace
}  // namespace ucqn
