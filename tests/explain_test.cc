#include "eval/explain.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "cost/cost_model.h"
#include "cost/stats_catalog.h"
#include "gen/scenarios.h"

namespace ucqn {
namespace {

TEST(ExplainDeltaTest, Example7PartialInstantiation) {
  // The paper's Example 7: Δ ∋ (a, null) reads as
  //   Q(a, y) :- not S("b"), R("a", "b"), B("a", y).
  Scenario s = Example7Nulls();
  DatabaseSource source(&s.database, &s.catalog);
  AnswerStarReport report = AnswerStar(s.query, s.catalog, &source);
  ASSERT_FALSE(report.complete);

  std::vector<DeltaExplanation> explanations =
      ExplainDelta(s.query, s.catalog, &source, report);
  ASSERT_EQ(explanations.size(), 1u);
  const DeltaExplanation& e = explanations[0];
  EXPECT_EQ(e.tuple, (Tuple{Term::Constant("a"), Term::Null()}));
  EXPECT_EQ(e.disjunct_index, 0u);
  const ConjunctiveQuery& pi = e.partially_instantiated;
  // Head: ("a", y) — the unknown y stays a variable, not a null.
  EXPECT_EQ(pi.head_terms()[0], Term::Constant("a"));
  EXPECT_TRUE(pi.head_terms()[1].IsVariable());
  // Body in the ORIGINAL order, with the witness b plugged in.
  ASSERT_EQ(pi.body().size(), 3u);
  EXPECT_EQ(pi.body()[0].ToString(), "not S(\"b\")");
  EXPECT_EQ(pi.body()[1].ToString(), "R(\"a\", \"b\")");
  EXPECT_EQ(pi.body()[2].relation(), "B");
  EXPECT_EQ(pi.body()[2].args()[0], Term::Constant("a"));
  EXPECT_TRUE(pi.body()[2].args()[1].IsVariable());
}

TEST(ExplainDeltaTest, CompleteAnswersNeedNoExplanations) {
  Scenario s = Example4UnderOver();  // runtime-complete despite infeasible
  DatabaseSource source(&s.database, &s.catalog);
  AnswerStarReport report = AnswerStar(s.query, s.catalog, &source);
  ASSERT_TRUE(report.complete);
  EXPECT_TRUE(ExplainDelta(s.query, s.catalog, &source, report).empty());
}

TEST(ExplainDeltaTest, EveryDeltaTupleGetsAtLeastOneExplanation) {
  for (const Scenario& s : AllScenarios()) {
    DatabaseSource source(&s.database, &s.catalog);
    AnswerStarReport report = AnswerStar(s.query, s.catalog, &source);
    std::vector<DeltaExplanation> explanations =
        ExplainDelta(s.query, s.catalog, &source, report);
    std::set<Tuple> explained;
    for (const DeltaExplanation& e : explanations) {
      EXPECT_TRUE(report.delta.count(e.tuple)) << s.name;
      explained.insert(e.tuple);
    }
    for (const Tuple& t : report.delta) {
      EXPECT_TRUE(explained.count(t))
          << s.name << ": unexplained Δ tuple " << TupleToString(t);
    }
  }
}

TEST(ExplainDeltaTest, MultipleWitnessesMultipleExplanations) {
  // Two R-witnesses produce the same null row; both readings surface.
  Catalog catalog = Catalog::MustParse("R/2: oo\nB/2: ii\n");
  UnionQuery q = MustParseUnionQuery("Q(x, y) :- R(x, z), B(x, y).");
  Database db = Database::MustParseFacts(R"(
    R("a", "b1").
    R("a", "b2").
  )");
  DatabaseSource source(&db, &catalog);
  AnswerStarReport report = AnswerStar(q, catalog, &source);
  ASSERT_EQ(report.delta.size(), 1u);  // (a, null)
  std::vector<DeltaExplanation> explanations =
      ExplainDelta(q, catalog, &source, report);
  EXPECT_EQ(explanations.size(), 2u);  // one per witness z = b1 / b2
  std::string rendered;
  for (const DeltaExplanation& e : explanations) rendered += e.ToString();
  EXPECT_NE(rendered.find("b1"), std::string::npos);
  EXPECT_NE(rendered.find("b2"), std::string::npos);
}

TEST(ExplainPlanTest, RecordsChosenAndRejectedPatternsWithCosts) {
  Catalog catalog = Catalog::MustParse("Seed/1: o\nLookup/2: io oo\n");
  ConjunctiveQuery q = MustParseRule("Q(x, v) :- Seed(x), Lookup(x, v).");

  StatsCatalog stats;
  RelationStats lookup;
  lookup.calls = 64;
  lookup.tuples = 64;
  lookup.p50_latency_micros = 5000.0;
  stats.Record("Lookup", lookup);
  CardinalityEstimates estimates;
  estimates.Set("Seed", 64.0);
  estimates.Set("Lookup", 5000.0);
  AdaptiveCostOptions options;
  options.tuple_cost_micros = 50.0;
  AdaptiveCostModel model(&stats, estimates, options);

  PlanExplanation explanation = ExplainPlan(q, catalog, model);
  EXPECT_TRUE(explanation.ok);
  EXPECT_EQ(explanation.model, "adaptive");
  ASSERT_EQ(explanation.steps.size(), 2u);
  // The Lookup step records every candidate: the rejected keyed probe
  // (io, priced at 64 slow calls) next to the chosen scan.
  const PatternDecision& decision = explanation.steps[1].decision;
  ASSERT_TRUE(decision.chosen.has_value());
  EXPECT_EQ(decision.chosen->word(), "oo");
  ASSERT_EQ(decision.candidates.size(), 2u);
  EXPECT_EQ(decision.candidates[0].pattern.word(), "io");
  EXPECT_FALSE(decision.candidates[0].chosen);
  EXPECT_TRUE(decision.candidates[1].chosen);
  EXPECT_GT(decision.candidates[0].cost, decision.candidates[1].cost);

  const std::string rendered = explanation.ToString();
  EXPECT_NE(rendered.find("cost model: adaptive"), std::string::npos);
  EXPECT_NE(rendered.find("io cost="), std::string::npos);
  EXPECT_NE(rendered.find("oo cost="), std::string::npos);
  EXPECT_NE(rendered.find("(chosen)"), std::string::npos);
}

TEST(ExplainPlanTest, StopsAtTheFirstNonExecutableLiteral) {
  // Lookup only declares a keyed pattern, so with nothing bound the plan
  // is not executable at literal 0 — the explanation says so.
  Catalog catalog = Catalog::MustParse("Lookup/2: io\n");
  ConjunctiveQuery q = MustParseRule("Q(x, v) :- Lookup(x, v).");
  StaticCostModel model;
  PlanExplanation explanation = ExplainPlan(q, catalog, model);
  EXPECT_FALSE(explanation.ok);
  ASSERT_EQ(explanation.steps.size(), 1u);
  EXPECT_FALSE(explanation.steps[0].decision.chosen.has_value());
  EXPECT_NE(explanation.ToString().find("not executable"), std::string::npos);
  EXPECT_NE(explanation.ToString().find("unusable"), std::string::npos);
}

TEST(ExplainPlanTest, CoversEveryDisjunctOfAUnion) {
  Catalog catalog = Catalog::MustParse("R/1: o\nS/1: o\n");
  UnionQuery q = MustParseUnionQuery("Q(x) :- R(x).\nQ(x) :- S(x).\n");
  StaticCostModel model;
  std::vector<PlanExplanation> explanations = ExplainPlan(q, catalog, model);
  ASSERT_EQ(explanations.size(), 2u);
  EXPECT_TRUE(explanations[0].ok);
  EXPECT_TRUE(explanations[1].ok);
  EXPECT_EQ(explanations[0].steps[0].decision.relation, "R");
  EXPECT_EQ(explanations[1].steps[0].decision.relation, "S");
}

}  // namespace
}  // namespace ucqn
