#include "feasibility/compile.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "gen/scenarios.h"

namespace ucqn {
namespace {

TEST(CompileTest, FeasibleQueryYieldsAdornedRewriting) {
  Scenario s = Example1Books();
  CompileResult result = Compile(s.query, s.catalog);
  EXPECT_TRUE(result.feasible);
  EXPECT_EQ(result.path, FeasibleDecisionPath::kPlansEqual);
  ASSERT_EQ(result.over.size(), 1u);
  std::string plan = result.over[0].ToString();
  EXPECT_NE(plan.find("C^oo"), std::string::npos);
  EXPECT_NE(plan.find("not L^o"), std::string::npos);
  EXPECT_TRUE(result.diagnostics.empty());
  EXPECT_NE(result.Report().find("equivalent executable rewriting"),
            std::string::npos);
}

TEST(CompileTest, DiagnosticsNameBlockedVariables) {
  Scenario s = Example4UnderOver();
  CompileResult result = Compile(s.query, s.catalog);
  EXPECT_FALSE(result.feasible);
  ASSERT_EQ(result.diagnostics.size(), 1u);
  const UnanswerableDiagnosis& diag = result.diagnostics[0];
  EXPECT_EQ(diag.disjunct_index, 0u);
  EXPECT_EQ(diag.literal.ToString(), "B(x, y)");
  ASSERT_EQ(diag.blocked_variables.size(), 1u);
  EXPECT_EQ(diag.blocked_variables[0], Term::Variable("y"));
  // x is bindable via R, y is not: the unblocking pattern is B^io.
  ASSERT_TRUE(diag.suggested_pattern.has_value());
  EXPECT_EQ(diag.suggested_pattern->word(), "io");
  EXPECT_NE(diag.ToString().find("B^io"), std::string::npos);
}

TEST(CompileTest, SuggestedPatternActuallyUnblocks) {
  // Adding the suggested pattern must make the query feasible.
  Scenario s = Example4UnderOver();
  CompileResult before = Compile(s.query, s.catalog);
  ASSERT_FALSE(before.feasible);
  Catalog upgraded = s.catalog;
  for (const UnanswerableDiagnosis& diag : before.diagnostics) {
    ASSERT_TRUE(diag.suggested_pattern.has_value());
    upgraded.AddPattern(diag.literal.relation(),
                        diag.suggested_pattern->word());
  }
  CompileResult after = Compile(s.query, upgraded);
  EXPECT_TRUE(after.feasible);
}

TEST(CompileTest, NegativeLiteralGetsNoPatternSuggestion) {
  Catalog catalog = Catalog::MustParse("R/1: o\nS/2: ii\n");
  // not S(x, w): w can never be bound, and no pattern can fix a negation.
  UnionQuery q = MustParseUnionQuery("Q(x) :- R(x), S(w, w), not S(x, w).");
  CompileResult result = Compile(q, catalog);
  bool saw_negative = false;
  for (const UnanswerableDiagnosis& diag : result.diagnostics) {
    if (diag.literal.negative()) {
      saw_negative = true;
      EXPECT_FALSE(diag.suggested_pattern.has_value());
      EXPECT_NE(diag.ToString().find("negated call can only filter"),
                std::string::npos);
    }
  }
  EXPECT_TRUE(saw_negative);
}

TEST(CompileTest, ConstraintsTurnInfeasibleIntoFeasible) {
  // Example 6 as a compile-time story: the only infeasible disjunct is
  // refuted by the foreign key, so the pruned query is feasible.
  Scenario s = Example6ForeignKey();
  CompileResult without = Compile(s.query, s.catalog);
  EXPECT_FALSE(without.feasible);

  ConstraintSet constraints = ConstraintSet::MustParse("R[1] c= S[0]");
  CompileOptions options;
  options.constraints = &constraints;
  CompileResult with = Compile(s.query, s.catalog, options);
  EXPECT_TRUE(with.feasible);
  EXPECT_EQ(with.pruned_disjuncts, 1u);
  EXPECT_EQ(with.analyzed_query.size(), 1u);
  EXPECT_NE(with.Report().find("pruned by integrity constraints"),
            std::string::npos);
}

TEST(CompileTest, ChaseUnlocksFeasibilityBeyondPruning) {
  // B^i cannot bind y, so the query is infeasible; under R[0] ⊆ B[0] the
  // chase adds B(x) to the body, the overestimate gains a B-atom, and the
  // containment test maps B(y) onto it — feasible, and NOT via pruning.
  Catalog catalog = Catalog::MustParse("R/2: oo\nS/1: i\nB/1: i\n");
  UnionQuery q = MustParseUnionQuery("Q(x) :- R(x, z), S(z), B(y).");
  EXPECT_FALSE(Compile(q, catalog).feasible);

  ConstraintSet constraints = ConstraintSet::MustParse("R[0] c= B[0]");
  CompileOptions options;
  options.constraints = &constraints;
  CompileResult with_chase = Compile(q, catalog, options);
  EXPECT_TRUE(with_chase.feasible);
  EXPECT_EQ(with_chase.pruned_disjuncts, 0u);  // pruning alone can't help
  EXPECT_EQ(with_chase.path, FeasibleDecisionPath::kContainment);

  // The ablation switch really is the difference.
  options.chase = false;
  EXPECT_FALSE(Compile(q, catalog, options).feasible);
}

TEST(CompileTest, EmptyBodyOverestimateRowIsHandled) {
  Catalog catalog = Catalog::MustParse("B/2: ii\nT/1: o\n");
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- B(x, y).
    Q(x) :- T(x).
  )");
  CompileResult result = Compile(q, catalog);
  EXPECT_FALSE(result.feasible);
  ASSERT_EQ(result.over.size(), 2u);
  EXPECT_EQ(result.over[0].ToString(), "Q(null).");
  EXPECT_TRUE(result.over[0].adornments.empty());
}

TEST(CompileTest, ContainmentPathProducesWitnesses) {
  // Example 3: feasible via containment; one witness per rewriting rule.
  Scenario s = Example3FeasibleNotOrderable();
  CompileResult result = Compile(s.query, s.catalog);
  ASSERT_TRUE(result.feasible);
  ASSERT_EQ(result.path, FeasibleDecisionPath::kContainment);
  ASSERT_EQ(result.witnesses.size(), result.over.size());
  for (const ContainmentWitness& w : result.witnesses) {
    EXPECT_FALSE(w.by_unsatisfiability);
  }
  EXPECT_NE(result.Report().find("containment witnesses"),
            std::string::npos);
}

TEST(CompileTest, ShortcutPathsHaveNoWitnesses) {
  Scenario s = Example1Books();
  CompileResult result = Compile(s.query, s.catalog);
  EXPECT_TRUE(result.feasible);
  EXPECT_TRUE(result.witnesses.empty());
}

TEST(CompileTest, ReportListsPlansAndDiagnostics) {
  Scenario s = Example4UnderOver();
  std::string report = Compile(s.query, s.catalog).Report();
  EXPECT_NE(report.find("feasible: no"), std::string::npos);
  EXPECT_NE(report.find("underestimate"), std::string::npos);
  EXPECT_NE(report.find("overestimate"), std::string::npos);
  EXPECT_NE(report.find("unanswerable"), std::string::npos);
}

}  // namespace
}  // namespace ucqn
