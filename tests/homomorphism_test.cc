#include "containment/homomorphism.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace ucqn {
namespace {

int CountMappings(const ConjunctiveQuery& Q, const ConjunctiveQuery& P) {
  int count = 0;
  ForEachContainmentMapping(Q, P, [&](const Substitution&) {
    ++count;
    return false;  // keep enumerating
  });
  return count;
}

TEST(HomomorphismTest, IdentityMapping) {
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x, y).");
  EXPECT_TRUE(HasContainmentMapping(q, q));
}

TEST(HomomorphismTest, HeadMustMapPositionally) {
  ConjunctiveQuery Q = MustParseRule("Q(x) :- R(x, y).");
  ConjunctiveQuery P = MustParseRule("Q(a) :- R(a, b).");
  // Different variable names are fine: x maps to a positionally.
  EXPECT_TRUE(HasContainmentMapping(Q, P));
}

TEST(HomomorphismTest, HeadArityMismatchFails) {
  ConjunctiveQuery Q = MustParseRule("Q(x, y) :- R(x, y).");
  ConjunctiveQuery P = MustParseRule("Q(a) :- R(a, a).");
  EXPECT_FALSE(HasContainmentMapping(Q, P));
}

TEST(HomomorphismTest, RepeatedHeadVariableConstrains) {
  ConjunctiveQuery Q = MustParseRule("Q(x, x) :- R(x).");
  ConjunctiveQuery P1 = MustParseRule("Q(a, a) :- R(a).");
  ConjunctiveQuery P2 = MustParseRule("Q(a, b) :- R(a), R(b).");
  EXPECT_TRUE(HasContainmentMapping(Q, P1));
  EXPECT_FALSE(HasContainmentMapping(Q, P2));
}

TEST(HomomorphismTest, ConstantsMustMatchExactly) {
  ConjunctiveQuery Q = MustParseRule("Q(x) :- R(x, \"a\").");
  EXPECT_TRUE(
      HasContainmentMapping(Q, MustParseRule("Q(z) :- R(z, \"a\").")));
  EXPECT_FALSE(
      HasContainmentMapping(Q, MustParseRule("Q(z) :- R(z, \"b\").")));
  // A query constant does not map onto a frozen variable.
  EXPECT_FALSE(HasContainmentMapping(Q, MustParseRule("Q(z) :- R(z, w).")));
}

TEST(HomomorphismTest, VariableCanCollapse) {
  // Q has two R-atoms; both can map onto P's single atom.
  ConjunctiveQuery Q = MustParseRule("Q(x) :- R(x, y), R(x, z).");
  ConjunctiveQuery P = MustParseRule("Q(a) :- R(a, b).");
  EXPECT_TRUE(HasContainmentMapping(Q, P));
}

TEST(HomomorphismTest, MappingCountChainOntoTriangleStyle) {
  // Q: path of length 2; P: two paths sharing structure — count mappings.
  ConjunctiveQuery Q = MustParseRule("Q() :- E(x, y), E(y, z).");
  ConjunctiveQuery P = MustParseRule("Q() :- E(a, b), E(b, c), E(c, a).");
  // Each of the 3 edges starts a path of length 2 in the cycle: 3 mappings.
  EXPECT_EQ(CountMappings(Q, P), 3);
}

TEST(HomomorphismTest, VisitorEarlyStop) {
  ConjunctiveQuery Q = MustParseRule("Q() :- E(x, y).");
  ConjunctiveQuery P = MustParseRule("Q() :- E(a, b), E(b, c).");
  int seen = 0;
  bool stopped = ForEachContainmentMapping(Q, P, [&](const Substitution&) {
    ++seen;
    return true;  // stop at first
  });
  EXPECT_TRUE(stopped);
  EXPECT_EQ(seen, 1);
  EXPECT_EQ(CountMappings(Q, P), 2);
}

TEST(HomomorphismTest, StatsAreCounted) {
  HomomorphismStats stats;
  ConjunctiveQuery Q = MustParseRule("Q() :- E(x, y), E(y, z).");
  ConjunctiveQuery P = MustParseRule("Q() :- E(a, b), E(b, c), E(c, a).");
  HasContainmentMapping(Q, P, &stats);
  EXPECT_GT(stats.match_attempts, 0u);
  EXPECT_EQ(stats.mappings_found, 1u);  // early stop after the first
}

TEST(HomomorphismTest, NegativeLiteralsIgnoredHere) {
  // The raw mapping search only covers the positive body.
  ConjunctiveQuery Q = MustParseRule("Q(x) :- R(x), not S(x).");
  ConjunctiveQuery P = MustParseRule("Q(a) :- R(a), S(a).");
  EXPECT_TRUE(HasContainmentMapping(Q, P));
}

TEST(HomomorphismTest, NoAtomsNoConstraints) {
  ConjunctiveQuery Q = MustParseRule("Q(\"c\").");
  ConjunctiveQuery P = MustParseRule("Q(\"c\") :- R(\"c\").");
  EXPECT_TRUE(HasContainmentMapping(Q, P));
  // But a constant head must match.
  ConjunctiveQuery P2 = MustParseRule("Q(\"d\") :- R(\"d\").");
  EXPECT_FALSE(HasContainmentMapping(Q, P2));
}

}  // namespace
}  // namespace ucqn
