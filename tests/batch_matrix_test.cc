// Matrix test for batched + parallel source fetch: every runtime layer
// combination, at parallelism 1 and 4, must produce byte-identical
// answers to the plain per-binding reference loop, identical cache
// counters at every parallelism, and never exceed a call budget.

#include <gtest/gtest.h>

#include <map>
#include <utility>

#include "ast/parser.h"
#include "cost/cost_model.h"
#include "eval/executor.h"
#include "runtime/fault_injection.h"
#include "runtime/source_stack.h"

namespace ucqn {
namespace {

class BatchMatrixTest : public ::testing::Test {
 protected:
  BatchMatrixTest() {
    catalog_ = Catalog::MustParse("R/2: oo io\nS/1: o\nT/2: oo io\n");
    db_ = Database::MustParseFacts(R"(
      R("a", "b").
      R("c", "d").
      R("e", "b").
      R("g", "h").
      T("b", "t1").
      T("d", "t2").
      T("h", "t3").
      S("b").
    )");
  }

  // The reference semantics: per-binding loop, no runtime layers, no
  // faults.
  std::set<Tuple> ReferenceAnswers() {
    DatabaseSource backend(&db_, &catalog_);
    ExecutionOptions options;
    options.batch = false;
    ExecutionResult result = Execute(query_, catalog_, &backend, options);
    EXPECT_TRUE(result.ok) << result.error;
    return result.tuples;
  }

  Catalog catalog_;
  Database db_;
  ConjunctiveQuery query_ =
      MustParseRule("Q(x, w) :- R(x, z), T(z, w), not S(z).");
};

TEST_F(BatchMatrixTest, AnswersMatchReferenceAcrossEveryLayerCombination) {
  const std::set<Tuple> expected = ReferenceAnswers();
  ASSERT_EQ(expected.size(), 2u);  // Q("c","t2"), Q("g","t3")

  // combo bits: 1 = cache, 2 = retry (+ injected failures), 4 = metering.
  // A latency-injecting fault layer is always present so parallelism has
  // something to overlap; failures are injected only when retry is on.
  std::map<int, std::pair<std::uint64_t, std::uint64_t>> cache_counts_at_1;
  for (std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
    for (int combo = 0; combo < 8; ++combo) {
      const bool with_cache = (combo & 1) != 0;
      const bool with_retry = (combo & 2) != 0;
      const bool with_meter = (combo & 4) != 0;
      SCOPED_TRACE("parallelism=" + std::to_string(parallelism) +
                   " cache=" + std::to_string(with_cache) +
                   " retry=" + std::to_string(with_retry) +
                   " meter=" + std::to_string(with_meter));

      DatabaseSource backend(&db_, &catalog_);
      FaultPlan faults;
      faults.latency_micros = 100;
      if (with_retry) faults.fail_first_per_key = 1;
      FaultInjectingSource flaky(&backend, faults);

      ExecutionOptions options;
      options.runtime.cache = with_cache;
      options.runtime.retry = with_retry;
      options.runtime.retry_policy.max_attempts = 3;
      options.runtime.metering = with_meter;
      options.runtime.parallelism = parallelism;
      ExecutionResult result = Execute(query_, catalog_, &flaky, options);
      ASSERT_TRUE(result.ok) << result.error;
      EXPECT_EQ(result.tuples, expected);

      if (with_cache) {
        // The cache must count exactly the same hits and misses at any
        // parallelism — single-flighting keeps the ledger sequential.
        const auto counts = std::make_pair(result.runtime.cache_hits,
                                           result.runtime.cache_misses);
        if (parallelism == 1) {
          cache_counts_at_1[combo] = counts;
        } else {
          EXPECT_EQ(counts, cache_counts_at_1[combo]);
        }
      }
    }
  }
}

TEST_F(BatchMatrixTest, CallCountsAreIdenticalAcrossParallelism) {
  // 1 R scan + 3 deduplicated T probes + 1 S scan = 5 physical calls,
  // whatever the worker count. S/1 only declares the scan pattern `o`,
  // and a scan request carries no input values — the executor masks
  // bound values out of output slots (the source would ignore them
  // anyway), so all three negated probes collapse into one wave call.
  for (std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
    DatabaseSource backend(&db_, &catalog_);
    ExecutionOptions options;
    options.runtime.metering = true;
    options.runtime.budget.max_calls = 10;
    options.runtime.parallelism = parallelism;
    ExecutionResult result = Execute(query_, catalog_, &backend, options);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.runtime.source_calls, 5u)
        << "parallelism=" << parallelism;
    EXPECT_EQ(result.tuples, ReferenceAnswers());
  }
}

TEST_F(BatchMatrixTest, ExplicitStaticCostModelIsBitCompatibleWithDefault) {
  // The contract behind ExecutionOptions::cost_model's null default: an
  // explicitly-passed StaticCostModel must reproduce the no-model
  // behaviour exactly — same answers, same physical call count, same
  // cache ledger — across every runtime layer combination. Anything less
  // means the cost refactor changed a decision somewhere.
  StaticCostModel static_model;  // kMostInputs, like the default knob
  for (std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
    for (int combo = 0; combo < 8; ++combo) {
      SCOPED_TRACE("parallelism=" + std::to_string(parallelism) +
                   " combo=" + std::to_string(combo));
      ExecutionResult baseline, modeled;
      for (bool with_model : {false, true}) {
        DatabaseSource backend(&db_, &catalog_);
        FaultPlan faults;
        faults.latency_micros = 100;
        if ((combo & 2) != 0) faults.fail_first_per_key = 1;
        FaultInjectingSource flaky(&backend, faults);

        ExecutionOptions options;
        options.runtime.cache = (combo & 1) != 0;
        options.runtime.retry = (combo & 2) != 0;
        options.runtime.retry_policy.max_attempts = 3;
        options.runtime.metering = true;  // always meter: compare calls
        options.runtime.parallelism = parallelism;
        if (with_model) options.cost_model = &static_model;
        ExecutionResult result = Execute(query_, catalog_, &flaky, options);
        ASSERT_TRUE(result.ok) << result.error;
        (with_model ? modeled : baseline) = std::move(result);
      }
      EXPECT_EQ(modeled.tuples, baseline.tuples);
      EXPECT_EQ(modeled.runtime.source_calls, baseline.runtime.source_calls);
      EXPECT_EQ(modeled.runtime.cache_hits, baseline.runtime.cache_hits);
      EXPECT_EQ(modeled.runtime.cache_misses, baseline.runtime.cache_misses);
      EXPECT_EQ(modeled.runtime.retries, baseline.runtime.retries);
    }
  }
}

TEST_F(BatchMatrixTest, TightBudgetFailsCleanlyAtAnyParallelism) {
  for (std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
    DatabaseSource backend(&db_, &catalog_);
    ExecutionOptions options;
    options.runtime.budget.max_calls = 1;  // not enough for the join
    options.runtime.metering = true;
    options.runtime.parallelism = parallelism;
    ExecutionResult result = Execute(query_, catalog_, &backend, options);
    EXPECT_FALSE(result.ok) << "parallelism=" << parallelism;
    EXPECT_TRUE(result.tuples.empty());
    EXPECT_NE(result.error.find("budget"), std::string::npos);
    EXPECT_GT(result.runtime.budget_refusals, 0u);
    // The cap is a hard ceiling on physical calls, batched or not.
    EXPECT_LE(result.runtime.source_calls, 1u);
  }
}

TEST_F(BatchMatrixTest, RetryBudgetInteractionNeverExceedsTheCap) {
  // Every fresh signature fails once, so finishing would need 2 calls per
  // distinct request (10 total across the 5 distinct signatures); a budget
  // of 5 must stop the query at exactly 5 attempts — deterministically,
  // at any parallelism.
  for (std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
    DatabaseSource backend(&db_, &catalog_);
    FaultPlan faults;
    faults.fail_first_per_key = 1;
    FaultInjectingSource flaky(&backend, faults);
    ExecutionOptions options;
    options.runtime.retry = true;
    options.runtime.retry_policy.max_attempts = 3;
    options.runtime.budget.max_calls = 5;
    options.runtime.metering = true;
    options.runtime.parallelism = parallelism;
    ExecutionResult result = Execute(query_, catalog_, &flaky, options);
    EXPECT_FALSE(result.ok) << "parallelism=" << parallelism;
    EXPECT_NE(result.error.find("budget"), std::string::npos);
    EXPECT_EQ(result.runtime.source_calls, 5u)
        << "parallelism=" << parallelism;
    EXPECT_GT(result.runtime.budget_refusals, 0u);
  }
}

TEST_F(BatchMatrixTest, BackoffCrossingTheDeadlineFailsTheRoundCleanly) {
  // Satellite regression: when a retry round's backoff sleep would reach
  // or cross the deadline, the retrier must fail the round's survivors
  // immediately — no sleep, no call-budget debit for attempts never
  // made, every survivor counted as exactly one budget refusal — and
  // identically at any parallelism.
  for (std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
    SCOPED_TRACE("parallelism=" + std::to_string(parallelism));
    SimulatedClock clock;
    DatabaseSource backend(&db_, &catalog_);
    FaultPlan faults;
    faults.latency_micros = 100;
    faults.fail_first_per_key = 10;  // these probes never succeed here
    FaultInjectingSource flaky(&backend, faults, &clock);
    ParallelSource parallel(&flaky, parallelism, &clock);

    RetryPolicy policy;
    policy.max_attempts = 3;
    policy.initial_backoff_micros = 1000000;  // dwarfs the deadline
    policy.max_backoff_micros = 1000000;
    policy.jitter = 0.0;
    CallBudget budget;
    budget.max_calls = 3;
    budget.deadline_micros = 10000;
    RetryingSource retry(&parallel, policy, budget, &clock);

    const AccessPattern keyed = AccessPattern::MustParse("io");
    const std::vector<std::vector<std::optional<Term>>> probes = {
        {Term::Constant("b"), std::nullopt},
        {Term::Constant("d"), std::nullopt},
        {Term::Constant("h"), std::nullopt}};
    std::vector<FetchResult> results = retry.FetchBatch("T", keyed, probes);
    ASSERT_EQ(results.size(), 3u);
    for (std::size_t i = 0; i < results.size(); ++i) {
      SCOPED_TRACE("request " + std::to_string(i));
      EXPECT_EQ(results[i].status, FetchStatus::kBudgetExhausted);
      EXPECT_NE(results[i].error.find("would be crossed by a 1000000us"),
                std::string::npos)
          << results[i].error;
    }

    const RetryingSource::RetryStats& stats = retry.retry_stats();
    EXPECT_EQ(stats.attempts, 3u);  // round 1 only; round 2 never flew
    EXPECT_EQ(stats.retries, 0u);
    EXPECT_EQ(stats.budget_refusals, 3u);  // one per pending request
    EXPECT_EQ(stats.backoff_micros_total, 0u);  // the sleep was skipped
    EXPECT_LT(clock.NowMicros(), budget.deadline_micros);

    // The call budget was debited for exactly the three round-1 attempts
    // (not over-debited for the refused round): the next call trips the
    // max_calls gate, not the deadline.
    FetchResult after =
        retry.Fetch("T", keyed, {Term::Constant("b"), std::nullopt});
    EXPECT_EQ(after.status, FetchStatus::kBudgetExhausted);
    EXPECT_NE(after.error.find("call budget of 3"), std::string::npos)
        << after.error;
    EXPECT_EQ(retry.retry_stats().attempts, 3u);
  }
}

}  // namespace
}  // namespace ucqn
