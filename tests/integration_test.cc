// End-to-end pipelines: text schema/query/facts in, compile-time analysis,
// plan execution, and runtime completeness reporting out — the full flow a
// mediator system would run (Section 1's web-service setting).

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/answer_star.h"
#include "eval/domain_enum.h"
#include "eval/executor.h"
#include "eval/explain.h"
#include "eval/oracle.h"
#include "eval/planner.h"
#include "eval/source_adapters.h"
#include "feasibility/compile.h"
#include "feasibility/feasible.h"
#include "feasibility/li_chang.h"
#include "gen/scenarios.h"
#include "mediator/capabilities.h"
#include "runtime/caching_source.h"
#include "schema/adornment.h"

namespace ucqn {
namespace {

TEST(IntegrationTest, BookServicePipeline) {
  // A web-service flavored catalog: a book search service (by ISBN or by
  // author), a scannable catalog, and a library lookup.
  Catalog catalog = Catalog::MustParse(R"(
    relation BookSearch/3: ioo oio
    relation Catalog/2: oo
    relation Library/1: o
  )");
  UnionQuery query = MustParseUnionQuery(R"(
    Wanted(i, a, t) :- BookSearch(i, a, t), Catalog(i, a), not Library(i).
  )");
  Database db = Database::MustParseFacts(R"(
    BookSearch(1, "Knuth", "TAOCP").
    BookSearch(2, "Date", "DBS").
    BookSearch(3, "Codd", "Relational Model").
    Catalog(1, "Knuth").
    Catalog(2, "Date").
    Catalog(3, "Codd").
    Library(2).
    Library(3).
  )");

  // Compile: the query is not executable as written but feasible.
  FeasibleResult feasible = Feasible(query, catalog);
  ASSERT_TRUE(feasible.feasible);
  EXPECT_EQ(feasible.path, FeasibleDecisionPath::kPlansEqual);

  // Execute the plan and compare with the reference semantics.
  DatabaseSource source(&db, &catalog);
  ExecutionResult result = Execute(feasible.plans.over, catalog, &source);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.tuples, OracleEvaluate(query, db));
  ASSERT_EQ(result.tuples.size(), 1u);
  EXPECT_EQ((*result.tuples.begin())[2], Term::Constant("TAOCP"));

  // The plan respects the access patterns: each call supplied inputs.
  EXPECT_GT(source.stats().calls, 0u);
}

TEST(IntegrationTest, MediatorViewUnfoldingBirnStyle) {
  // A global-as-view mediator in the BIRN mold: integrated views over
  // neuroscience-ish sources, unfolded into UCQ¬ plans. One view body is
  // unsatisfiable w.r.t. the unfolding (complementary literals), which the
  // runtime handling must neutralize (Section 4.2's discussion).
  Catalog catalog = Catalog::MustParse(R"(
    relation SubjectA/2: oo
    relation SubjectB/2: oo
    relation Excluded/1: o
    relation Scan/2: io
  )");
  UnionQuery unfolded = MustParseUnionQuery(R"(
    Subjects(s, d) :- SubjectA(s, d), not Excluded(s).
    Subjects(s, d) :- SubjectB(s, d), Excluded(s), not Excluded(s).
    Subjects(s, d) :- SubjectB(s, d), not Excluded(s).
  )");
  Database db = Database::MustParseFacts(R"(
    SubjectA("s1", "d1").
    SubjectB("s2", "d2").
    Excluded("s2").
    Scan("s1", "img1").
  )");

  // The unsatisfiable disjunct is dropped by PLAN*; the rest is orderable.
  FeasibleResult feasible = Feasible(unfolded, catalog);
  EXPECT_TRUE(feasible.feasible);
  EXPECT_EQ(feasible.plans.over.size(), 2u);

  DatabaseSource source(&db, &catalog);
  AnswerStarReport report = AnswerStar(unfolded, catalog, &source);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.under, OracleEvaluate(unfolded, db));
  ASSERT_EQ(report.under.size(), 1u);
}

TEST(IntegrationTest, InfeasibleQueryFullRuntimeFlow) {
  // Infeasible query → ANSWER* underestimate → user opts into domain
  // enumeration → improved underestimate closes the gap.
  Scenario s = Example8DomainEnum();
  ASSERT_FALSE(IsFeasible(s.query, s.catalog));

  DatabaseSource source(&s.database, &s.catalog);
  AnswerStarReport report = AnswerStar(s.query, s.catalog, &source);
  EXPECT_FALSE(report.complete);
  std::set<Tuple> truth = OracleEvaluate(s.query, s.database);
  EXPECT_LT(report.under.size(), truth.size());

  ImprovedUnderestimate improved =
      ImproveUnderestimate(s.query, s.catalog, &source);
  EXPECT_EQ(improved.tuples, truth);  // domain enumeration closed the gap
}

TEST(IntegrationTest, ViewLibraryBatchFeasibilityCheck) {
  // "View design / view debugging" (Section 4.1): check a whole library of
  // view definitions at definition time.
  Catalog catalog = Catalog::MustParse(R"(
    relation Orders/3: ioo ooo
    relation Customer/2: io
    relation Blacklist/1: i
    relation Returns/2: ii
  )");
  std::vector<UnionQuery> views = MustParseProgram(R"(
    GoodOrders(o, c) :- Orders(o, c, d), not Blacklist(c).
    CustomerOrders(c, n, o) :- Customer(c, n), Orders(o, c, d).
    ReturnHistory(o, r) :- Returns(o, r).
  )");
  ASSERT_EQ(views.size(), 3u);
  EXPECT_TRUE(IsFeasible(views[0], catalog));   // scan orders, probe list
  // Customer^io needs c bound first; Orders provides it only via ooo scan:
  // reorder Orders first — feasible.
  EXPECT_TRUE(IsFeasible(views[1], catalog));
  // Returns^ii can never produce r: infeasible.
  FeasibleResult r2 = Feasible(views[2], catalog);
  EXPECT_FALSE(r2.feasible);
  EXPECT_EQ(r2.path, FeasibleDecisionPath::kNullInOverestimate);
}

TEST(IntegrationTest, AdornedPlanRendering) {
  // The compile pipeline can show the adorned executable form, matching
  // the paper's B^ioo notation.
  Scenario s = Example1Books();
  FeasibleResult feasible = Feasible(s.query, s.catalog);
  ASSERT_TRUE(feasible.feasible);
  const ConjunctiveQuery& plan = feasible.plans.over.disjuncts()[0];
  std::optional<std::vector<AccessPattern>> adornments =
      ComputeAdornments(plan, s.catalog);
  ASSERT_TRUE(adornments.has_value());
  std::string text = AdornedToString(plan, *adornments);
  EXPECT_NE(text.find("C^oo"), std::string::npos);
  EXPECT_NE(text.find("not L^o"), std::string::npos);
}

TEST(IntegrationTest, FullStackMediatorSession) {
  // Everything at once: a layered view stack is analyzed bottom-up, a
  // client query over the exported catalog is unfolded, chased against a
  // foreign key, compiled, cost-ordered, and executed through a caching
  // indexed source — with the answer matching the reference semantics.
  Catalog sources = Catalog::MustParse(R"(
    relation Person/2: oo io @1000
    relation Employment/2: io @5000
    relation Blocked/1: i @10
  )");
  ViewRegistry views = ViewRegistry::MustParse(R"(
    Workers(p, e) :- Person(p, d), Employment(p, e).
  )");

  // 1. Capability propagation: Workers is feasible outright (Person can
  //    be scanned, then Employment probed).
  ViewStackAnalysis stack = AnalyzeViewStack(views, sources);
  ASSERT_TRUE(stack.ok) << stack.error;
  ASSERT_EQ(stack.capabilities.size(), 1u);
  EXPECT_TRUE(stack.capabilities[0].feasible_outright);

  // 2. A client query over the view, unfolded to the sources.
  UnionQuery client = MustParseUnionQuery(
      "Q(p, e) :- Workers(p, e), not Blocked(p).");
  UnfoldResult unfolded = Unfold(client, views);
  ASSERT_TRUE(unfolded.ok) << unfolded.error;

  // 3. Compile and cost-order.
  CompileResult compiled = Compile(unfolded.query, sources);
  ASSERT_TRUE(compiled.feasible);
  CardinalityEstimates estimates = CardinalityEstimates::FromCatalog(sources);
  std::optional<UnionQuery> ordered =
      OptimizeLiteralOrder(unfolded.query, sources, estimates);
  ASSERT_TRUE(ordered.has_value());

  // 4. Execute through stacked adapters.
  Database db = Database::MustParseFacts(R"(
    Person("ada", "1815").
    Person("bob", "1990").
    Person("eve", "1988").
    Employment("ada", "Analytical Engines Ltd").
    Employment("eve", "Sniffing Inc").
    Blocked("eve").
  )");
  IndexedDatabaseSource backend(&db, &sources);
  CachingSource cached(&backend);
  ExecutionResult result = Execute(*ordered, sources, &cached);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.tuples, OracleEvaluate(unfolded.query, db));
  ASSERT_EQ(result.tuples.size(), 1u);
  EXPECT_EQ((*result.tuples.begin())[0], Term::Constant("ada"));

  // 5. ANSWER* certifies completeness (the query is feasible).
  AnswerStarReport report = AnswerStar(unfolded.query, sources, &cached);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(ExplainDelta(unfolded.query, sources, &cached, report).empty());
}

TEST(IntegrationTest, LiChangBaselinesAgreeOnScenarioCqs) {
  // Scenario 9/10 are the paper's own CQ/UCQ processing examples; the
  // uniform algorithm and all four baselines agree.
  Scenario e9 = Example9CqProcessing();
  const ConjunctiveQuery& cq = e9.query.disjuncts()[0];
  EXPECT_EQ(CqStable(cq, e9.catalog), IsFeasible(e9.query, e9.catalog));
  EXPECT_EQ(CqStableStar(cq, e9.catalog), IsFeasible(e9.query, e9.catalog));
  Scenario e10 = Example10UcqProcessing();
  EXPECT_EQ(UcqStable(e10.query, e10.catalog),
            IsFeasible(e10.query, e10.catalog));
  EXPECT_EQ(UcqStableStar(e10.query, e10.catalog),
            IsFeasible(e10.query, e10.catalog));
}

}  // namespace
}  // namespace ucqn
