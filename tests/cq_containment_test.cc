#include "containment/cq_containment.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace ucqn {
namespace {

TEST(CqContainmentTest, ReflexiveAndSpecialization) {
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x, y).");
  EXPECT_TRUE(CqContained(q, q));
  // More joins = more specific: P ⊑ Q.
  ConjunctiveQuery p = MustParseRule("Q(x) :- R(x, y), S(y).");
  EXPECT_TRUE(CqContained(p, q));
  EXPECT_FALSE(CqContained(q, p));
}

TEST(CqContainmentTest, ClassicPathExample) {
  // P: path of length 3, Q: path of length 2 with both endpoints free —
  // not contained (the homomorphism must preserve the head).
  ConjunctiveQuery p = MustParseRule("Q(x, w) :- E(x, y), E(y, z), E(z, w).");
  ConjunctiveQuery q = MustParseRule("Q(x, w) :- E(x, y), E(y, w).");
  EXPECT_FALSE(CqContained(p, q));
  // With a boolean head, a length-3 path does NOT imply a length-2 path
  // homomorphically... it does: map E(a,b),E(b,c) onto the first two edges.
  ConjunctiveQuery pb = MustParseRule("Q() :- E(x, y), E(y, z), E(z, w).");
  ConjunctiveQuery qb = MustParseRule("Q() :- E(a, b), E(b, c).");
  EXPECT_TRUE(CqContained(pb, qb));
  EXPECT_FALSE(CqContained(qb, pb));
}

TEST(CqContainmentTest, CycleIntoSelfLoop) {
  ConjunctiveQuery loop = MustParseRule("Q() :- E(x, x).");
  ConjunctiveQuery cycle = MustParseRule("Q() :- E(a, b), E(b, a).");
  // A self-loop satisfies the cycle: loop ⊑ cycle.
  EXPECT_TRUE(CqContained(loop, cycle));
  // A 2-cycle has no homomorphic image of a self-loop.
  EXPECT_FALSE(CqContained(cycle, loop));
}

TEST(CqContainmentTest, ConstantsBlockCollapse) {
  ConjunctiveQuery p = MustParseRule("Q(x) :- R(x, \"a\").");
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x, y).");
  EXPECT_TRUE(CqContained(p, q));
  EXPECT_FALSE(CqContained(q, p));
}

TEST(UcqContainmentTest, DisjunctwiseWitnesses) {
  UnionQuery p = MustParseUnionQuery(R"(
    Q(x) :- R(x), S(x).
    Q(x) :- T(x), U(x).
  )");
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- R(x).
    Q(x) :- T(x).
  )");
  EXPECT_TRUE(UcqContained(p, q));
  EXPECT_FALSE(UcqContained(q, p));
}

TEST(UcqContainmentTest, RequiresSingleDisjunctWitness) {
  // For UCQs (no negation), Pᵢ ⊑ Q iff Pᵢ ⊑ Qⱼ for some single j
  // (Sagiv–Yannakakis); here neither disjunct alone contains P.
  UnionQuery p = MustParseUnionQuery("Q(x) :- R(x).");
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- R(x), S(x).
    Q(x) :- R(x), T(x).
  )");
  EXPECT_FALSE(UcqContained(p, q));
}

TEST(UcqContainmentTest, FalseQueryEdgeCases) {
  UnionQuery f;
  UnionQuery q = MustParseUnionQuery("Q(x) :- R(x).");
  EXPECT_TRUE(UcqContained(f, q));
  EXPECT_TRUE(UcqContained(f, f));
  EXPECT_FALSE(UcqContained(q, f));
}

TEST(UcqEquivalentTest, RedundantDisjunct) {
  UnionQuery p = MustParseUnionQuery(R"(
    Q(x) :- R(x).
    Q(x) :- R(x), S(x).
  )");
  UnionQuery q = MustParseUnionQuery("Q(x) :- R(x).");
  EXPECT_TRUE(UcqEquivalent(p, q));
  EXPECT_FALSE(UcqEquivalent(p, MustParseUnionQuery("Q(x) :- S(x).")));
}

}  // namespace
}  // namespace ucqn
