#include "runtime/retrying_source.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/executor.h"
#include "runtime/fault_injection.h"

namespace ucqn {
namespace {

class RetryingSourceTest : public ::testing::Test {
 protected:
  RetryingSourceTest() {
    catalog_ = Catalog::MustParse("R/2: oo io\nS/1: o\n");
    db_ = Database::MustParseFacts(R"(
      R("a", "b").
      R("c", "d").
      S("b").
    )");
  }

  Catalog catalog_;
  Database db_;
};

TEST_F(RetryingSourceTest, RetriesThroughTransientFailures) {
  DatabaseSource backend(&db_, &catalog_);
  FaultPlan faults;
  faults.fail_first_per_key = 2;  // every fresh call fails twice, then works
  FaultInjectingSource flaky(&backend, faults);
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryingSource retrying(&flaky, policy);

  FetchResult result = retrying.Fetch("S", AccessPattern::MustParse("o"),
                                      {std::nullopt});
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.tuples.size(), 1u);
  EXPECT_EQ(retrying.retry_stats().attempts, 3u);
  EXPECT_EQ(retrying.retry_stats().retries, 2u);
  EXPECT_EQ(retrying.retry_stats().successes, 1u);
  EXPECT_EQ(retrying.retry_stats().giveups, 0u);
}

TEST_F(RetryingSourceTest, GivesUpAfterMaxAttempts) {
  DatabaseSource backend(&db_, &catalog_);
  FaultPlan faults;
  faults.fail_first_per_key = 5;
  FaultInjectingSource flaky(&backend, faults);
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryingSource retrying(&flaky, policy);

  FetchResult result = retrying.Fetch("S", AccessPattern::MustParse("o"),
                                      {std::nullopt});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, FetchStatus::kTransientError);
  EXPECT_NE(result.error.find("giving up"), std::string::npos);
  EXPECT_NE(result.error.find("3 attempt"), std::string::npos);
  EXPECT_EQ(retrying.retry_stats().giveups, 1u);
}

TEST_F(RetryingSourceTest, BackoffGrowsExponentiallyAndIsCapped) {
  DatabaseSource backend(&db_, &catalog_);
  FaultPlan faults;
  faults.fail_first_per_key = 4;
  FaultInjectingSource flaky(&backend, faults);
  RetryPolicy policy;
  policy.max_attempts = 5;
  policy.initial_backoff_micros = 100;
  policy.backoff_multiplier = 2.0;
  policy.max_backoff_micros = 300;  // caps the 3rd and 4th backoff
  policy.jitter = 0.0;              // deterministic schedule
  SimulatedClock clock;
  RetryingSource retrying(&flaky, policy, CallBudget{}, &clock);

  ASSERT_TRUE(
      retrying.Fetch("S", AccessPattern::MustParse("o"), {std::nullopt}).ok());
  // Backoffs: 100, 200, min(400,300)=300, min(800,300)=300.
  EXPECT_EQ(retrying.retry_stats().backoff_micros_total, 900u);
  EXPECT_EQ(clock.NowMicros(), 900u);
}

TEST_F(RetryingSourceTest, JitterIsSeededAndBounded) {
  auto run = [this](std::uint64_t seed) {
    DatabaseSource backend(&db_, &catalog_);
    FaultPlan faults;
    faults.fail_first_per_key = 3;
    FaultInjectingSource flaky(&backend, faults);
    RetryPolicy policy;
    policy.max_attempts = 4;
    policy.initial_backoff_micros = 1000;
    policy.backoff_multiplier = 1.0;
    policy.max_backoff_micros = 1000;
    policy.jitter = 0.5;
    policy.jitter_seed = seed;
    RetryingSource retrying(&flaky, policy);
    EXPECT_TRUE(retrying.Fetch("S", AccessPattern::MustParse("o"),
                               {std::nullopt})
                    .ok());
    return retrying.retry_stats().backoff_micros_total;
  };
  const std::uint64_t a = run(7);
  // Three backoffs of base 1000us, each stretched by [1, 1.5).
  EXPECT_GE(a, 3000u);
  EXPECT_LT(a, 4500u);
  EXPECT_EQ(a, run(7));  // same seed, same schedule
  EXPECT_NE(a, run(8));  // different seed, different schedule
}

TEST_F(RetryingSourceTest, CallBudgetRefusesFurtherCalls) {
  DatabaseSource backend(&db_, &catalog_);
  CallBudget budget;
  budget.max_calls = 2;
  RetryingSource retrying(&backend, RetryPolicy{}, budget);
  const AccessPattern keyed = AccessPattern::MustParse("io");

  EXPECT_TRUE(
      retrying.Fetch("R", keyed, {Term::Constant("a"), std::nullopt}).ok());
  EXPECT_TRUE(
      retrying.Fetch("R", keyed, {Term::Constant("c"), std::nullopt}).ok());
  FetchResult third =
      retrying.Fetch("R", keyed, {Term::Constant("x"), std::nullopt});
  EXPECT_FALSE(third.ok());
  EXPECT_EQ(third.status, FetchStatus::kBudgetExhausted);
  EXPECT_EQ(retrying.retry_stats().budget_refusals, 1u);

  // A new query restarts the accounting.
  retrying.ResetBudget();
  EXPECT_TRUE(
      retrying.Fetch("R", keyed, {Term::Constant("x"), std::nullopt}).ok());
}

TEST_F(RetryingSourceTest, RetryAttemptsCountAgainstTheCallBudget) {
  DatabaseSource backend(&db_, &catalog_);
  FaultPlan faults;
  faults.fail_first_per_key = 10;
  FaultInjectingSource flaky(&backend, faults);
  RetryPolicy policy;
  policy.max_attempts = 10;
  CallBudget budget;
  budget.max_calls = 4;
  RetryingSource retrying(&flaky, policy, budget);

  FetchResult result = retrying.Fetch("S", AccessPattern::MustParse("o"),
                                      {std::nullopt});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, FetchStatus::kBudgetExhausted);
  // Exactly 4 attempts were allowed through before the refusal; the refusal
  // escalates the last transient error for diagnosis.
  EXPECT_EQ(retrying.retry_stats().attempts, 4u);
  EXPECT_NE(result.error.find("injected transient failure"),
            std::string::npos);
}

TEST_F(RetryingSourceTest, DeadlineBudgetCountsBackoffTime) {
  DatabaseSource backend(&db_, &catalog_);
  FaultPlan faults;
  faults.fail_first_per_key = 100;
  FaultInjectingSource flaky(&backend, faults);
  RetryPolicy policy;
  policy.max_attempts = 100;
  policy.initial_backoff_micros = 1000;
  policy.backoff_multiplier = 1.0;
  policy.max_backoff_micros = 1000;
  policy.jitter = 0.0;
  CallBudget budget;
  budget.deadline_micros = 3500;  // room for 3 backoffs of 1000us
  SimulatedClock clock;
  RetryingSource retrying(&flaky, policy, budget, &clock);

  FetchResult result = retrying.Fetch("S", AccessPattern::MustParse("o"),
                                      {std::nullopt});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status, FetchStatus::kBudgetExhausted);
  EXPECT_NE(result.error.find("deadline"), std::string::npos);
  EXPECT_EQ(retrying.retry_stats().attempts, 4u);
}

TEST_F(RetryingSourceTest, QuerySucceedsThroughRetryWhereBareSourceFails) {
  // The acceptance scenario: every fresh call fails once, so the bare
  // executor cannot finish, but the retrying stack completes and computes
  // the exact same answer an unfaulted source would.
  ConjunctiveQuery plan = MustParseRule("Q(x) :- R(x, z), not S(z).");

  DatabaseSource reference_backend(&db_, &catalog_);
  ExecutionResult reference = Execute(plan, catalog_, &reference_backend);
  ASSERT_TRUE(reference.ok);

  FaultPlan faults;
  faults.fail_first_per_key = 1;

  DatabaseSource bare_backend(&db_, &catalog_);
  FaultInjectingSource bare(&bare_backend, faults);
  ExecutionResult without_retry = Execute(plan, catalog_, &bare);
  EXPECT_FALSE(without_retry.ok);
  EXPECT_NE(without_retry.error.find("injected transient failure"),
            std::string::npos);

  DatabaseSource retry_backend(&db_, &catalog_);
  FaultInjectingSource flaky(&retry_backend, faults);
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryingSource retrying(&flaky, policy);
  ExecutionResult with_retry = Execute(plan, catalog_, &retrying);
  ASSERT_TRUE(with_retry.ok) << with_retry.error;
  EXPECT_EQ(with_retry.tuples, reference.tuples);
  EXPECT_GT(retrying.retry_stats().retries, 0u);
}

TEST(FaultInjectionTest, SeededFailuresAreDeterministic) {
  Catalog catalog = Catalog::MustParse("S/1: o\n");
  Database db = Database::MustParseFacts("S(\"b\").\n");
  auto outcomes = [&](std::uint64_t seed) {
    DatabaseSource backend(&db, &catalog);
    FaultPlan plan;
    plan.failure_probability = 0.5;
    plan.seed = seed;
    FaultInjectingSource flaky(&backend, plan);
    std::string pattern;
    for (int i = 0; i < 32; ++i) {
      pattern += flaky.Fetch("S", AccessPattern::MustParse("o"), {std::nullopt})
                         .ok()
                     ? 'o'
                     : 'x';
    }
    return pattern;
  };
  EXPECT_EQ(outcomes(5), outcomes(5));
  EXPECT_NE(outcomes(5), outcomes(6));
  EXPECT_NE(outcomes(5).find('x'), std::string::npos);
  EXPECT_NE(outcomes(5).find('o'), std::string::npos);
}

TEST(FaultInjectionTest, LatencyIsChargedToTheClock) {
  Catalog catalog = Catalog::MustParse("S/1: o\n");
  Database db = Database::MustParseFacts("S(\"b\").\n");
  DatabaseSource backend(&db, &catalog);
  FaultPlan plan;
  plan.latency_micros = 250;
  SimulatedClock clock;
  FaultInjectingSource slow(&backend, plan, &clock);
  slow.FetchOrDie("S", AccessPattern::MustParse("o"), {std::nullopt});
  slow.FetchOrDie("S", AccessPattern::MustParse("o"), {std::nullopt});
  EXPECT_EQ(clock.NowMicros(), 500u);
  EXPECT_EQ(slow.fault_stats().injected_latency_micros, 500u);
  EXPECT_EQ(slow.fault_stats().calls, 2u);
}

}  // namespace
}  // namespace ucqn
