#include "ast/substitution.h"

#include <gtest/gtest.h>

namespace ucqn {
namespace {

TEST(SubstitutionTest, BindAndLookup) {
  Substitution s;
  EXPECT_TRUE(s.empty());
  EXPECT_TRUE(s.Bind(Term::Variable("x"), Term::Constant("A")));
  EXPECT_TRUE(s.IsBound(Term::Variable("x")));
  EXPECT_FALSE(s.IsBound(Term::Variable("y")));
  ASSERT_TRUE(s.Lookup(Term::Variable("x")).has_value());
  EXPECT_EQ(*s.Lookup(Term::Variable("x")), Term::Constant("A"));
  EXPECT_EQ(s.size(), 1u);
}

TEST(SubstitutionTest, RebindingSameValueSucceeds) {
  Substitution s;
  EXPECT_TRUE(s.Bind(Term::Variable("x"), Term::Constant("A")));
  EXPECT_TRUE(s.Bind(Term::Variable("x"), Term::Constant("A")));
  EXPECT_FALSE(s.Bind(Term::Variable("x"), Term::Constant("B")));
  EXPECT_EQ(*s.Lookup(Term::Variable("x")), Term::Constant("A"));
}

TEST(SubstitutionTest, ApplyTerm) {
  Substitution s;
  s.Bind(Term::Variable("x"), Term::Constant("A"));
  EXPECT_EQ(s.Apply(Term::Variable("x")), Term::Constant("A"));
  EXPECT_EQ(s.Apply(Term::Variable("y")), Term::Variable("y"));
  EXPECT_EQ(s.Apply(Term::Constant("B")), Term::Constant("B"));
  EXPECT_EQ(s.Apply(Term::Null()), Term::Null());
}

TEST(SubstitutionTest, ApplyAtomAndLiteral) {
  Substitution s;
  s.Bind(Term::Variable("x"), Term::Variable("z"));
  Atom a("R", {Term::Variable("x"), Term::Variable("y")});
  EXPECT_EQ(s.Apply(a), Atom("R", {Term::Variable("z"), Term::Variable("y")}));
  Literal l = Literal::Negative(a);
  Literal applied = s.Apply(l);
  EXPECT_TRUE(applied.negative());
  EXPECT_EQ(applied.atom().args()[0], Term::Variable("z"));
}

TEST(MatchArgsTest, BindsVariablesToTargets) {
  Substitution s;
  std::vector<Term> pattern = {Term::Variable("x"), Term::Variable("y")};
  std::vector<Term> target = {Term::Constant("A"), Term::Variable("b")};
  EXPECT_TRUE(MatchArgs(pattern, target, &s));
  EXPECT_EQ(*s.Lookup(Term::Variable("x")), Term::Constant("A"));
  // Target variables are frozen: they become the *value* of the binding.
  EXPECT_EQ(*s.Lookup(Term::Variable("y")), Term::Variable("b"));
}

TEST(MatchArgsTest, RepeatedVariableMustMatchConsistently) {
  Substitution s;
  std::vector<Term> pattern = {Term::Variable("x"), Term::Variable("x")};
  EXPECT_FALSE(
      MatchArgs(pattern, {Term::Constant("A"), Term::Constant("B")}, &s));
  Substitution s2;
  EXPECT_TRUE(
      MatchArgs(pattern, {Term::Constant("A"), Term::Constant("A")}, &s2));
}

TEST(MatchArgsTest, GroundPatternTermsRequireExactMatch) {
  Substitution s;
  EXPECT_TRUE(MatchArgs({Term::Constant("A")}, {Term::Constant("A")}, &s));
  EXPECT_FALSE(MatchArgs({Term::Constant("A")}, {Term::Constant("B")}, &s));
  // A ground pattern term does not match a frozen variable.
  EXPECT_FALSE(MatchArgs({Term::Constant("A")}, {Term::Variable("x")}, &s));
}

TEST(MatchArgsTest, ArityMismatchFails) {
  Substitution s;
  EXPECT_FALSE(MatchArgs({Term::Variable("x")}, {}, &s));
}

TEST(SubstitutionTest, ToStringIsSorted) {
  Substitution s;
  s.Bind(Term::Variable("b"), Term::Constant("B"));
  s.Bind(Term::Variable("a"), Term::Constant("A"));
  EXPECT_EQ(s.ToString(), "{a/A, b/B}");
}

}  // namespace
}  // namespace ucqn
