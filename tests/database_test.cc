#include "eval/database.h"

#include <gtest/gtest.h>

namespace ucqn {
namespace {

Tuple T2(const std::string& a, const std::string& b) {
  return {Term::Constant(a), Term::Constant(b)};
}

TEST(DatabaseTest, InsertAndFind) {
  Database db;
  db.Insert("R", T2("a", "b"));
  db.Insert("R", T2("a", "b"));  // set semantics
  db.Insert("R", T2("a", "c"));
  const std::set<Tuple>* r = db.Find("R");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->size(), 2u);
  EXPECT_TRUE(db.Contains("R", T2("a", "b")));
  EXPECT_FALSE(db.Contains("R", T2("b", "a")));
  EXPECT_EQ(db.Find("S"), nullptr);
  EXPECT_FALSE(db.Contains("S", T2("a", "b")));
}

TEST(DatabaseTest, Counts) {
  Database db;
  db.Insert("R", T2("a", "b"));
  db.Insert("S", {Term::Constant("x")});
  EXPECT_EQ(db.TupleCount("R"), 1u);
  EXPECT_EQ(db.TupleCount("T"), 0u);
  EXPECT_EQ(db.TotalTuples(), 2u);
  EXPECT_EQ(db.RelationNames(), (std::vector<std::string>{"R", "S"}));
}

TEST(DatabaseTest, NullValuesAreStorable) {
  Database db;
  db.Insert("R", {Term::Constant("a"), Term::Null()});
  EXPECT_TRUE(db.Contains("R", {Term::Constant("a"), Term::Null()}));
}

TEST(DatabaseTest, ActiveDomain) {
  Database db;
  db.Insert("R", T2("a", "b"));
  db.Insert("S", {Term::Constant("b")});
  std::set<Term> domain = db.ActiveDomain();
  EXPECT_EQ(domain.size(), 2u);
  EXPECT_TRUE(domain.count(Term::Constant("a")));
  EXPECT_TRUE(domain.count(Term::Constant("b")));
}

TEST(DatabaseTest, ParseFacts) {
  Database db = Database::MustParseFacts(R"(
    B(1, "Knuth", "TAOCP").
    B(2, "Date", "DBS").
    L(2).
  )");
  EXPECT_EQ(db.TupleCount("B"), 2u);
  EXPECT_EQ(db.TupleCount("L"), 1u);
  EXPECT_TRUE(db.Contains("L", {Term::Constant("2")}));
}

TEST(DatabaseTest, ParseFactsRejectsRulesAndVariables) {
  std::string error;
  EXPECT_FALSE(Database::ParseFacts("R(x).", &error).has_value());
  EXPECT_NE(error.find("ground"), std::string::npos);
  EXPECT_FALSE(Database::ParseFacts("R(1) :- S(1).", &error).has_value());
  EXPECT_NE(error.find("empty bodies"), std::string::npos);
}

TEST(DatabaseTest, ToStringRoundTrip) {
  Database db = Database::MustParseFacts("R(\"a\", \"b\").\nS(\"c\").\n");
  Database again = Database::MustParseFacts(db.ToString());
  EXPECT_EQ(again.ToString(), db.ToString());
  EXPECT_EQ(again.TotalTuples(), 2u);
}

TEST(TupleToStringTest, Rendering) {
  EXPECT_EQ(TupleToString({Term::Constant("A"), Term::Null()}), "(A, null)");
  EXPECT_EQ(TupleToString({}), "()");
  std::set<Tuple> tuples = {{Term::Constant("A")}, {Term::Constant("B")}};
  EXPECT_EQ(TupleSetToString(tuples), "(A)\n(B)");
}

}  // namespace
}  // namespace ucqn
