// The in-process replay engine: request accounting, the simulated-clock
// percentiles and cache-hit curves, determinism, the cost-model A/B
// contract (plans move calls, never answers), and the concurrent replay
// path (also exercised under ThreadSanitizer via the `concurrency`
// label).

#include "gen/workload_replay.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <string>
#include <utility>

#include "gen/workload.h"

namespace ucqn {
namespace {

WorkloadSpec SmallWorkload(std::uint64_t requests = 200) {
  WorkloadGenOptions options;
  options.seed = 11;
  options.chain_length = 4;
  options.enumerable_relations = 2;
  options.decoy_relations = 2;
  options.domain_size = 12;
  options.tuples_per_relation = 20;
  options.num_queries = 30;
  options.latency_micros = 100;
  options.slow_relations = 0;
  options.failure_probability = 0.0;
  options.replay.requests = requests;
  options.replay.tenants = 2;
  return GenerateWorkload(options);
}

TEST(WorkloadReplayTest, AccountsForEveryRequest) {
  const WorkloadSpec spec = SmallWorkload();
  WorkloadReplayOptions options;
  options.windows = 4;
  const WorkloadReplayReport report = ReplayWorkload(spec, options);
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.requests, 200u);
  EXPECT_EQ(report.ok_count +  report.error_count + report.shed_count +
                report.quota_count,
            200u);
  EXPECT_EQ(report.ok_count, 200u);  // no faults, no limits
  // Injected latency accrues on the simulated clock only.
  EXPECT_GT(report.sim_wall_micros, 0u);
  EXPECT_GT(report.physical_calls, 0u);
  ASSERT_EQ(report.windows.size(), 4u);
  std::uint64_t windowed = 0;
  for (const ReplayWindow& window : report.windows) {
    windowed += window.requests;
  }
  EXPECT_EQ(windowed, 200u);
  // Percentiles are ordered (serial replay reports them).
  EXPECT_LE(report.p50_micros, report.p95_micros);
  EXPECT_LE(report.p95_micros, report.p99_micros);
  // The JSON report carries the headline fields.
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"p99_us\""), std::string::npos);
  EXPECT_NE(json.find("\"hit_curve\""), std::string::npos);
}

TEST(WorkloadReplayTest, ReplayIsDeterministic) {
  const WorkloadSpec spec = SmallWorkload();
  const WorkloadReplayReport first = ReplayWorkload(spec, {});
  const WorkloadReplayReport second = ReplayWorkload(spec, {});
  ASSERT_TRUE(first.ok && second.ok);
  EXPECT_EQ(first.answers_hash, second.answers_hash);
  EXPECT_EQ(first.sim_wall_micros, second.sim_wall_micros);
  EXPECT_EQ(first.physical_calls, second.physical_calls);
}

TEST(WorkloadReplayTest, CostModelsMoveCallsNeverAnswers) {
  const WorkloadSpec spec = SmallWorkload();
  WorkloadReplayOptions fixed;
  fixed.cost_model = "static";
  WorkloadReplayOptions fallback;
  fallback.cost_model = "adaptive";
  fallback.fanout_feedback = false;
  WorkloadReplayOptions informed;
  informed.cost_model = "adaptive";
  const WorkloadReplayReport a = ReplayWorkload(spec, fixed);
  const WorkloadReplayReport b = ReplayWorkload(spec, fallback);
  const WorkloadReplayReport c = ReplayWorkload(spec, informed);
  ASSERT_TRUE(a.ok && b.ok && c.ok);
  EXPECT_EQ(a.ok_count, spec.replay.requests);
  // The whole A/B contract in one line each: byte-identical answers...
  EXPECT_EQ(a.answers_hash, b.answers_hash);
  EXPECT_EQ(a.answers_hash, c.answers_hash);
  // ...and the informed model never needs more backend calls than the
  // fallback on this workload (usually strictly fewer).
  EXPECT_LE(c.physical_calls, b.physical_calls);
}

TEST(WorkloadReplayTest, RejectsBadOptionsAndEmptyWorkloads) {
  WorkloadReplayOptions options;
  options.cost_model = "psychic";
  EXPECT_FALSE(ReplayWorkload(SmallWorkload(), options).ok);
  WorkloadSpec empty;
  EXPECT_FALSE(ReplayWorkload(empty, {}).ok);
}

TEST(WorkloadReplayTest, ConcurrentReplayMatchesSerialAnswers) {
  // Four client threads hammer one daemon; the XOR digest is completion-
  // order independent, so it must equal the serial run's bit for bit.
  // (This is the test the tsan gate replays under ThreadSanitizer.)
  const WorkloadSpec spec = SmallWorkload(400);
  WorkloadReplayOptions serial;
  const WorkloadReplayReport baseline = ReplayWorkload(spec, serial);
  ASSERT_TRUE(baseline.ok);
  WorkloadReplayOptions concurrent;
  concurrent.threads = 4;
  concurrent.disjunct_concurrency = 2;
  const WorkloadReplayReport report = ReplayWorkload(spec, concurrent);
  ASSERT_TRUE(report.ok);
  EXPECT_EQ(report.ok_count, 400u);
  EXPECT_EQ(report.answers_hash, baseline.answers_hash);
  // Concurrent replays skip the per-request sim percentiles (interleaved
  // clock reads would attribute other threads' waits), and say so.
  EXPECT_EQ(report.p99_micros, 0u);
}

TEST(WorkloadReplayTest, AdmissionAndQuotaLimitsSurfaceInTheReport) {
  // One in-flight slot, one queue slot, four threads: concurrent
  // arrivals must shed, and the report's buckets still account for
  // every request. Whether any two requests actually overlap is up to
  // the scheduler — a loaded single-CPU host can serialize all four
  // threads — so retry a few times and require a shed across the
  // attempts; accounting must hold on every attempt.
  const WorkloadSpec spec = SmallWorkload(200);
  WorkloadReplayOptions options;
  options.threads = 4;
  options.max_in_flight = 1;
  options.max_queued = 1;
  std::uint64_t shed = 0;
  for (int attempt = 0; attempt < 5 && shed == 0; ++attempt) {
    const WorkloadReplayReport report = ReplayWorkload(spec, options);
    ASSERT_TRUE(report.ok);
    EXPECT_EQ(report.ok_count + report.error_count + report.shed_count +
                  report.quota_count,
              200u);
    shed = report.shed_count;
  }
  EXPECT_GT(shed, 0u);
}

TEST(WorkloadReplayTest, DeltaStreamIsAppliedDuringReplay) {
  WorkloadGenOptions options;
  options.seed = 11;
  options.chain_length = 4;
  options.enumerable_relations = 2;
  options.decoy_relations = 2;
  options.domain_size = 12;
  options.tuples_per_relation = 20;
  options.num_queries = 30;
  options.latency_micros = 100;
  options.slow_relations = 0;
  options.replay.requests = 200;
  options.replay.tenants = 2;
  options.update_rate = 0.15;
  const WorkloadSpec spec = GenerateWorkload(options);
  ASSERT_FALSE(spec.deltas.empty());

  std::set<std::uint64_t> batch_indices;
  std::set<std::pair<std::uint64_t, std::string>> batches;
  for (const WorkloadDeltaEvent& event : spec.deltas) {
    batch_indices.insert(event.at_request);
    batches.insert({event.at_request, event.relation});
  }

  const WorkloadReplayReport report = ReplayWorkload(spec, {});
  ASSERT_TRUE(report.ok) << report.error;
  EXPECT_EQ(report.ok_count, 200u);
  // One delta op per (request index, relation) group, all accepted —
  // the replay owns a private mutable copy of the instance.
  EXPECT_EQ(report.deltas_applied, batches.size());
  EXPECT_EQ(report.delta_error_count, 0u);
  const std::string json = report.ToJson();
  EXPECT_NE(json.find("\"deltas_applied\""), std::string::npos);

  // The updates change what the standing corpus of queries sees: the
  // same requests against the frozen v1 instance answer differently.
  WorkloadSpec frozen = spec;
  frozen.deltas.clear();
  const WorkloadReplayReport static_report = ReplayWorkload(frozen, {});
  ASSERT_TRUE(static_report.ok) << static_report.error;
  EXPECT_NE(report.answers_hash, static_report.answers_hash);

  // And deterministic: replaying the delta'd workload again lands on the
  // same digest.
  const WorkloadReplayReport again = ReplayWorkload(spec, {});
  ASSERT_TRUE(again.ok);
  EXPECT_EQ(again.answers_hash, report.answers_hash);
  EXPECT_EQ(again.deltas_applied, report.deltas_applied);
}

}  // namespace
}  // namespace ucqn
