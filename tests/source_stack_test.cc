#include "runtime/source_stack.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/answer_star.h"
#include "eval/executor.h"
#include "runtime/fault_injection.h"

namespace ucqn {
namespace {

class SourceStackTest : public ::testing::Test {
 protected:
  SourceStackTest() {
    catalog_ = Catalog::MustParse("R/2: oo io\nS/1: o\nT/2: oo\n");
    db_ = Database::MustParseFacts(R"(
      R("a", "b").
      R("c", "d").
      S("b").
      T("a", "b").
      T("c", "d").
    )");
  }

  Catalog catalog_;
  Database db_;
};

TEST_F(SourceStackTest, DisabledOptionsBuildNoLayers) {
  DatabaseSource backend(&db_, &catalog_);
  RuntimeOptions options;
  EXPECT_FALSE(options.Enabled());
  SourceStack stack(&backend, options);
  EXPECT_EQ(stack.source(), &backend);
  EXPECT_EQ(stack.cache(), nullptr);
  EXPECT_EQ(stack.retrier(), nullptr);
  EXPECT_EQ(stack.meter(), nullptr);
}

TEST_F(SourceStackTest, FullStackComposesBottomUp) {
  DatabaseSource backend(&db_, &catalog_);
  RuntimeOptions options;
  options.cache = true;
  options.retry = true;
  options.metering = true;
  SourceStack stack(&backend, options);
  ASSERT_NE(stack.cache(), nullptr);
  ASSERT_NE(stack.retrier(), nullptr);
  ASSERT_NE(stack.meter(), nullptr);
  EXPECT_EQ(stack.source(), stack.cache());

  // A repeated call: one physical attempt, one cache hit; the meter at the
  // bottom only sees the miss.
  stack.source()->FetchOrDie("S", AccessPattern::MustParse("o"),
                             {std::nullopt});
  stack.source()->FetchOrDie("S", AccessPattern::MustParse("o"),
                             {std::nullopt});
  EXPECT_EQ(stack.meter()->totals().calls, 1u);
  EXPECT_EQ(stack.cache()->cache_stats().hits, 1u);
  EXPECT_EQ(backend.stats().calls, 1u);

  RuntimeStats stats = stack.stats();
  EXPECT_EQ(stats.source_calls, 1u);
  EXPECT_EQ(stats.tuples_fetched, 1u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.cache_misses, 1u);
  EXPECT_DOUBLE_EQ(stats.CacheHitRatio(), 0.5);
}

TEST_F(SourceStackTest, ExecutorReportsRuntimeStats) {
  DatabaseSource backend(&db_, &catalog_);
  ExecutionOptions options;
  options.runtime.cache = true;
  options.runtime.metering = true;
  // The plan probes S once per R binding with identical inputs after the
  // first, so the cache converts repeats into hits.
  ExecutionResult result = Execute(
      MustParseRule("Q(x) :- R(x, z), not S(z)."), catalog_, &backend,
      options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.runtime.source_calls, 0u);
  EXPECT_EQ(result.runtime.source_calls, backend.stats().calls);
  EXPECT_EQ(result.runtime.cache_misses, backend.stats().calls);
}

TEST_F(SourceStackTest, PlainExecuteLeavesRuntimeStatsZero) {
  DatabaseSource backend(&db_, &catalog_);
  ExecutionResult result =
      Execute(MustParseRule("Q(x) :- R(x, z)."), catalog_, &backend);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.runtime.source_calls, 0u);
  EXPECT_EQ(result.runtime.cache_misses, 0u);
}

TEST_F(SourceStackTest, CacheIsSharedAcrossUnionDisjuncts) {
  // Both disjuncts scan R; with a shared per-query stack the second
  // disjunct's scan is a hit.
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- R(x, z), not S(z).
    Q(x) :- R(x, z), T(x, z).
  )");
  DatabaseSource backend(&db_, &catalog_);
  ExecutionOptions options;
  options.runtime.cache = true;
  ExecutionResult result = Execute(q, catalog_, &backend, options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.runtime.cache_hits, 0u);

  DatabaseSource plain(&db_, &catalog_);
  ExecutionResult reference = Execute(q, catalog_, &plain);
  ASSERT_TRUE(reference.ok);
  EXPECT_EQ(result.tuples, reference.tuples);
  EXPECT_LT(backend.stats().calls, plain.stats().calls);
}

TEST_F(SourceStackTest, BudgetFailsTheQueryCleanly) {
  DatabaseSource backend(&db_, &catalog_);
  ExecutionOptions options;
  options.runtime.budget.max_calls = 1;  // not enough for the join
  ExecutionResult result = Execute(
      MustParseRule("Q(x) :- R(x, z), not S(z)."), catalog_, &backend,
      options);
  EXPECT_FALSE(result.ok);
  EXPECT_TRUE(result.tuples.empty());
  EXPECT_NE(result.error.find("budget"), std::string::npos);
  EXPECT_GT(result.runtime.budget_refusals, 0u);
}

TEST_F(SourceStackTest, RetryOptionSurvivesInjectedFaults) {
  DatabaseSource backend(&db_, &catalog_);
  FaultPlan faults;
  faults.fail_first_per_key = 1;
  FaultInjectingSource flaky(&backend, faults);

  ExecutionOptions retry_options;
  retry_options.runtime.retry = true;
  retry_options.runtime.retry_policy.max_attempts = 3;
  ExecutionResult result = Execute(
      MustParseRule("Q(x) :- R(x, z), not S(z)."), catalog_, &flaky,
      retry_options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.runtime.retries, 0u);

  DatabaseSource plain(&db_, &catalog_);
  ExecutionResult reference = Execute(
      MustParseRule("Q(x) :- R(x, z), not S(z)."), catalog_, &plain);
  EXPECT_EQ(result.tuples, reference.tuples);
}

TEST_F(SourceStackTest, ExecuteForBindingsCarriesRuntimeStats) {
  DatabaseSource backend(&db_, &catalog_);
  ExecutionOptions options;
  options.runtime.cache = true;
  BindingsResult result = ExecuteForBindings(
      MustParseRule("Q(x) :- R(x, z), not S(z)."), catalog_, &backend,
      options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_GT(result.runtime.cache_misses, 0u);
}

TEST_F(SourceStackTest, AnswerStarSharesTheStackAcrossPlans) {
  UnionQuery q = MustParseUnionQuery("Q(x) :- R(x, z), not S(z).");
  DatabaseSource plain(&db_, &catalog_);
  AnswerStarReport reference = AnswerStar(q, catalog_, &plain);
  ASSERT_TRUE(reference.ok);

  DatabaseSource backend(&db_, &catalog_);
  ExecutionOptions options;
  options.runtime.cache = true;
  AnswerStarReport cached = AnswerStar(q, catalog_, &backend, options);
  ASSERT_TRUE(cached.ok) << cached.error;
  EXPECT_EQ(cached.under, reference.under);
  EXPECT_EQ(cached.over, reference.over);
  // Qᵘ and Qᵒ overlap, so sharing one cache across both must save calls.
  EXPECT_GT(cached.runtime.cache_hits, 0u);
  EXPECT_LT(backend.stats().calls, plain.stats().calls);
}

TEST_F(SourceStackTest, AnswerStarReportsBudgetFailure) {
  UnionQuery q = MustParseUnionQuery("Q(x) :- R(x, z), not S(z).");
  DatabaseSource backend(&db_, &catalog_);
  ExecutionOptions options;
  options.runtime.budget.max_calls = 1;
  AnswerStarReport report = AnswerStar(q, catalog_, &backend, options);
  EXPECT_FALSE(report.ok);
  EXPECT_NE(report.error.find("plan failed"), std::string::npos);
  EXPECT_NE(report.Summary().find("ANSWER* failed"), std::string::npos);
  EXPECT_TRUE(report.under.empty());
  EXPECT_TRUE(report.over.empty());
}

TEST_F(SourceStackTest, StatsToStringMentionsTheHeadlineNumbers) {
  DatabaseSource backend(&db_, &catalog_);
  ExecutionOptions options;
  options.runtime.cache = true;
  ExecutionResult result = Execute(
      MustParseRule("Q(x) :- R(x, z), not S(z)."), catalog_, &backend,
      options);
  ASSERT_TRUE(result.ok);
  const std::string text = result.runtime.ToString();
  EXPECT_NE(text.find("calls"), std::string::npos);
  EXPECT_NE(text.find("hit"), std::string::npos);
}

}  // namespace
}  // namespace ucqn
