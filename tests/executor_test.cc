#include "eval/executor.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/oracle.h"

namespace ucqn {
namespace {

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() {
    catalog_ = Catalog::MustParse(R"(
      relation B/3: ioo oio
      relation C/2: oo
      relation L/1: o
    )");
    db_ = Database::MustParseFacts(R"(
      B(1, "Knuth", "TAOCP").
      B(2, "Date", "DBS").
      B(3, "Knuth", "CM").
      C(1, "Knuth").
      C(2, "Date").
      C(9, "Ghost").
      L(2).
    )");
  }

  Catalog catalog_;
  Database db_;
};

TEST_F(ExecutorTest, Example1ReorderedPlanRuns) {
  DatabaseSource source(&db_, &catalog_);
  ConjunctiveQuery plan =
      MustParseRule("Q(i, a, t) :- C(i, a), B(i, a, t), not L(i).");
  ExecutionResult result = Execute(plan, catalog_, &source);
  ASSERT_TRUE(result.ok) << result.error;
  // Book 1 (Knuth/TAOCP): in catalog, not in library. Book 2 filtered by L.
  ASSERT_EQ(result.tuples.size(), 1u);
  EXPECT_EQ(*result.tuples.begin(),
            (Tuple{Term::Constant("1"), Term::Constant("Knuth"),
                   Term::Constant("TAOCP")}));
  EXPECT_GT(source.stats().calls, 0u);
}

TEST_F(ExecutorTest, NonExecutableOrderFails) {
  DatabaseSource source(&db_, &catalog_);
  ConjunctiveQuery plan =
      MustParseRule("Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).");
  ExecutionResult result = Execute(plan, catalog_, &source);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no usable access pattern"), std::string::npos);
}

TEST_F(ExecutorTest, AgreesWithOracleOnExecutablePlans) {
  DatabaseSource source(&db_, &catalog_);
  ConjunctiveQuery plan =
      MustParseRule("Q(i, a, t) :- C(i, a), B(i, a, t), not L(i).");
  ExecutionResult result = Execute(plan, catalog_, &source);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.tuples, OracleEvaluate(plan, db_));
}

TEST_F(ExecutorTest, ConstantsInInputSlots) {
  DatabaseSource source(&db_, &catalog_);
  ConjunctiveQuery plan = MustParseRule("Q(a, t) :- B(1, a, t).");
  ExecutionResult result = Execute(plan, catalog_, &source);
  ASSERT_TRUE(result.ok) << result.error;
  ASSERT_EQ(result.tuples.size(), 1u);
  EXPECT_EQ((*result.tuples.begin())[1], Term::Constant("TAOCP"));
}

TEST_F(ExecutorTest, RepeatedVariablesFilterFetchedTuples) {
  Catalog catalog = Catalog::MustParse("E/2: oo\n");
  Database db = Database::MustParseFacts(R"(
    E("a", "a").
    E("a", "b").
    E("b", "b").
  )");
  DatabaseSource source(&db, &catalog);
  ExecutionResult result =
      Execute(MustParseRule("Q(x) :- E(x, x)."), catalog, &source);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.tuples.size(), 2u);
}

TEST_F(ExecutorTest, BoundOutputSlotsAreFilteredClientSide) {
  // Join B with itself on the title via the oio pattern: the second call
  // supplies a bound value in an output slot, which the source ignores but
  // the executor must filter.
  DatabaseSource source(&db_, &catalog_);
  ConjunctiveQuery plan =
      MustParseRule("Q(i, i2) :- C(i, a), B(i, a, t), B(i2, a, t).");
  ExecutionResult result = Execute(plan, catalog_, &source);
  ASSERT_TRUE(result.ok) << result.error;
  // Each Knuth/Date book joins with itself only (titles are unique).
  for (const Tuple& t : result.tuples) EXPECT_EQ(t[0], t[1]);
  EXPECT_EQ(result.tuples, OracleEvaluate(plan, db_));
}

TEST_F(ExecutorTest, EmptyBodyGroundHeadEmitsOneRow) {
  DatabaseSource source(&db_, &catalog_);
  ExecutionResult result =
      Execute(MustParseRule("Q(\"a\", null)."), catalog_, &source);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.tuples.size(), 1u);
  EXPECT_EQ(*result.tuples.begin(),
            (Tuple{Term::Constant("a"), Term::Null()}));
  EXPECT_EQ(source.stats().calls, 0u);
}

TEST_F(ExecutorTest, EmptyBodyNonGroundHeadFails) {
  DatabaseSource source(&db_, &catalog_);
  ExecutionResult result =
      Execute(MustParseRule("Q(x)."), catalog_, &source);
  EXPECT_FALSE(result.ok);
}

TEST_F(ExecutorTest, NullPaddedHeadPlanRuns) {
  // The overestimate shape: null is just a constant in the head.
  Catalog catalog = Catalog::MustParse("R/2: oo\nS/1: o\n");
  Database db = Database::MustParseFacts(R"(
    R("a", "b").
    R("c", "d").
    S("d").
  )");
  DatabaseSource source(&db, &catalog);
  ExecutionResult result = Execute(
      MustParseRule("Q(x, null) :- R(x, z), not S(z)."), catalog, &source);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.tuples.size(), 1u);
  EXPECT_EQ(*result.tuples.begin(),
            (Tuple{Term::Constant("a"), Term::Null()}));
}

TEST_F(ExecutorTest, UnionExecutesAllDisjuncts) {
  DatabaseSource source(&db_, &catalog_);
  UnionQuery q = MustParseUnionQuery(R"(
    Q(i) :- L(i).
    Q(i) :- C(i, a).
  )");
  ExecutionResult result = Execute(q, catalog_, &source);
  ASSERT_TRUE(result.ok);
  EXPECT_EQ(result.tuples.size(), 3u);  // {1, 2, 9}
}

TEST_F(ExecutorTest, FalseQueryReturnsNothing) {
  DatabaseSource source(&db_, &catalog_);
  ExecutionResult result = Execute(UnionQuery(), catalog_, &source);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.tuples.empty());
  EXPECT_EQ(source.stats().calls, 0u);
}

TEST_F(ExecutorTest, MaxBindingsGuardFailsCleanly) {
  Catalog catalog = Catalog::MustParse("E/2: oo\n");
  Database db;
  for (int i = 0; i < 20; ++i) {
    for (int j = 0; j < 20; ++j) {
      db.Insert("E", {Term::Constant("a" + std::to_string(i)),
                      Term::Constant("b" + std::to_string(j))});
    }
  }
  DatabaseSource source(&db, &catalog);
  ConjunctiveQuery plan = MustParseRule("Q(x, w) :- E(x, y), E(z, w).");
  ExecutionOptions options;
  options.max_bindings = 100;  // the cross product has 400*400 bindings
  ExecutionResult result = Execute(plan, catalog, &source, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("max_bindings"), std::string::npos);
  // Unlimited succeeds.
  ExecutionResult unlimited = Execute(plan, catalog, &source);
  EXPECT_TRUE(unlimited.ok);
}

TEST_F(ExecutorTest, MaxBindingsHitExactlyAtTheBoundaryPasses) {
  // The guard fails only on *exceeding* the cap: a plan whose largest
  // intermediate result equals max_bindings runs to completion.
  DatabaseSource source(&db_, &catalog_);
  ConjunctiveQuery plan = MustParseRule("Q(i, a) :- C(i, a).");
  ExecutionOptions exact;
  exact.max_bindings = 3;  // C has exactly 3 tuples
  ExecutionResult result = Execute(plan, catalog_, &source, exact);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.tuples.size(), 3u);

  ExecutionOptions below;
  below.max_bindings = 2;
  EXPECT_FALSE(Execute(plan, catalog_, &source, below).ok);
}

TEST_F(ExecutorTest, MaxBindingsOfOneAllowsFullySelectivePlans) {
  DatabaseSource source(&db_, &catalog_);
  ExecutionOptions options;
  options.max_bindings = 1;
  // Every literal keeps at most one live binding: the constant probe picks
  // a single book.
  ExecutionResult selective = Execute(MustParseRule("Q(a, t) :- B(1, a, t)."),
                                      catalog_, &source, options);
  ASSERT_TRUE(selective.ok) << selective.error;
  EXPECT_EQ(selective.tuples.size(), 1u);
  // The same cap rejects any scan with more than one match.
  ExecutionResult scan = Execute(MustParseRule("Q(i, a) :- C(i, a)."),
                                 catalog_, &source, options);
  EXPECT_FALSE(scan.ok);
  EXPECT_NE(scan.error.find("max_bindings"), std::string::npos);
}

TEST_F(ExecutorTest, MaxBindingsIsCheckedBeforeNegationCanShrinkTheSet) {
  // C yields 3 bindings, then `not L` filters book 2 out, leaving 2. The
  // cap is enforced per literal on the intermediate size, so max_bindings=2
  // fails at C even though the post-negation (and final) size fits; the
  // error names the literal that tripped the guard.
  DatabaseSource source(&db_, &catalog_);
  ConjunctiveQuery plan = MustParseRule("Q(i, a) :- C(i, a), not L(i).");
  ExecutionOptions roomy;
  roomy.max_bindings = 3;
  ExecutionResult ok = Execute(plan, catalog_, &source, roomy);
  ASSERT_TRUE(ok.ok) << ok.error;
  EXPECT_EQ(ok.tuples.size(), 2u);

  ExecutionOptions tight;
  tight.max_bindings = 2;
  ExecutionResult tripped = Execute(plan, catalog_, &source, tight);
  EXPECT_FALSE(tripped.ok);
  EXPECT_TRUE(tripped.tuples.empty());
  EXPECT_NE(tripped.error.find("max_bindings"), std::string::npos);
  EXPECT_NE(tripped.error.find("C(i, a)"), std::string::npos);
}

TEST_F(ExecutorTest, PatternPreferenceChangesCallShape) {
  // With both B^ioo and B^ooo declared, the kMostInputs executor probes by
  // ISBN (small transfers); kFewestInputs scans and filters client-side —
  // same answers, more tuples moved.
  Catalog catalog = Catalog::MustParse("C/2: oo\nB/3: ioo ooo\n");
  ConjunctiveQuery plan = MustParseRule("Q(i, t) :- C(i, a), B(i, a, t).");

  DatabaseSource selective(&db_, &catalog);
  ExecutionOptions most;
  most.pattern_preference = PatternPreference::kMostInputs;
  ExecutionResult r1 = Execute(plan, catalog, &selective, most);
  ASSERT_TRUE(r1.ok) << r1.error;

  DatabaseSource broad(&db_, &catalog);
  ExecutionOptions fewest;
  fewest.pattern_preference = PatternPreference::kFewestInputs;
  ExecutionResult r2 = Execute(plan, catalog, &broad, fewest);
  ASSERT_TRUE(r2.ok) << r2.error;

  EXPECT_EQ(r1.tuples, r2.tuples);  // semantics unchanged
  EXPECT_LT(selective.stats().tuples_returned,
            broad.stats().tuples_returned);
}

TEST_F(ExecutorTest, NegativeProbeUsesBoundValues) {
  // not L(i) should probe with i bound rather than scanning when an input
  // pattern exists; either way the result is an anti-join.
  Catalog catalog = Catalog::MustParse("C/2: oo\nL/1: i\n");
  Database db = Database::MustParseFacts(R"(
    C(1, "a").
    C(2, "b").
    L(2).
  )");
  DatabaseSource source(&db, &catalog);
  ExecutionResult result = Execute(
      MustParseRule("Q(i) :- C(i, a), not L(i)."), catalog, &source);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.tuples.size(), 1u);
  EXPECT_EQ(*result.tuples.begin(), (Tuple{Term::Constant("1")}));
}

}  // namespace
}  // namespace ucqn
