// Randomized oracle for delta maintenance: after every update batch, a
// StandingQuery's maintained report must be byte-identical to a
// from-scratch ANSWER* run on the post-update instance — across the
// paper's Examples 1-10 and seeded generated workloads, with batches that
// delete live tuples, reinsert recently deleted ones (revival), and flip
// anti-joins in both directions.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "ast/parser.h"
#include "eval/answer_star.h"
#include "eval/delta.h"
#include "gen/scenarios.h"
#include "gen/workload.h"

namespace ucqn {
namespace {

// One maintained-vs-fresh comparison. The standing report and the fresh
// AnswerStarReport share field shapes by design; every field must agree.
void ExpectMatchesOracle(const StandingQuery& standing, const UnionQuery& query,
                         const Catalog& catalog, const Database& db,
                         const std::string& context) {
  DatabaseSource backend(&db, &catalog);
  const AnswerStarReport fresh = AnswerStar(query, catalog, &backend);
  ASSERT_TRUE(fresh.ok) << context << ": " << fresh.error;
  const StandingAnswers maintained = standing.Answers();
  EXPECT_EQ(maintained.under, fresh.under) << context;
  EXPECT_EQ(maintained.over, fresh.over) << context;
  EXPECT_EQ(maintained.delta, fresh.delta) << context;
  EXPECT_EQ(maintained.complete, fresh.complete) << context;
  EXPECT_EQ(maintained.delta_has_nulls, fresh.delta_has_nulls) << context;
  EXPECT_EQ(maintained.completeness_lower_bound,
            fresh.completeness_lower_bound)
      << context;
}

// Draws a random ground tuple of `arity` from the constant pool.
Tuple RandomTuple(std::mt19937_64* rng, const std::vector<Term>& pool,
                  std::size_t arity) {
  std::uniform_int_distribution<std::size_t> pick(0, pool.size() - 1);
  Tuple tuple;
  tuple.reserve(arity);
  for (std::size_t i = 0; i < arity; ++i) tuple.push_back(pool[pick(*rng)]);
  return tuple;
}

// Builds a StandingQuery over a private copy of `db` and drives `rounds`
// random multi-relation update batches through it, oracle-checking after
// every batch. Batches bias toward tuples that matter: live tuples are
// deleted, recently deleted tuples are reinserted (the revival path), and
// fresh tuples draw from the instance's active domain plus a few constants
// the instance has never seen.
void RunRandomRounds(const UnionQuery& query, const Catalog& catalog,
                     Database db, std::uint64_t seed, int rounds,
                     const std::string& context) {
  DatabaseSource backend(&db, &catalog);
  std::string error;
  std::unique_ptr<StandingQuery> standing =
      StandingQuery::Build(query, catalog, &backend, &error);
  ASSERT_NE(standing, nullptr) << context << ": " << error;
  ExpectMatchesOracle(*standing, query, catalog, db, context + " (build)");

  std::mt19937_64 rng(seed);
  std::vector<Term> pool;
  for (const Term& term : db.ActiveDomain()) {
    if (term.IsConstant()) pool.push_back(term);
  }
  for (const char* fresh : {"zz1", "zz2", "zz3"}) {
    pool.push_back(Term::Constant(fresh));
  }
  std::map<std::string, std::vector<Tuple>> graveyard;

  std::uniform_real_distribution<double> coin(0.0, 1.0);
  for (int round = 0; round < rounds; ++round) {
    std::vector<RelationDelta> batch;
    for (const std::string& relation : standing->relations()) {
      const RelationSchema* schema = catalog.Find(relation);
      if (schema == nullptr) continue;
      if (coin(rng) > 0.7) continue;
      RelationDelta group;
      group.relation = relation;
      // Delete up to two live tuples.
      const std::set<Tuple>* live = db.Find(relation);
      if (live != nullptr && !live->empty() && coin(rng) < 0.6) {
        std::uniform_int_distribution<std::size_t> pick(0, live->size() - 1);
        auto it = live->begin();
        std::advance(it, pick(rng));
        group.deletes.push_back(*it);
        graveyard[relation].push_back(*it);
      }
      // Reinsert a recently deleted tuple (revives dead derivations and,
      // on negated relations, re-kills revived ones).
      std::vector<Tuple>& dead = graveyard[relation];
      if (!dead.empty() && coin(rng) < 0.5) {
        std::uniform_int_distribution<std::size_t> pick(0, dead.size() - 1);
        group.inserts.push_back(dead[pick(rng)]);
      }
      // And up to two random tuples from the pool.
      const int fresh_inserts = coin(rng) < 0.5 ? 1 : 2;
      for (int i = 0; i < fresh_inserts; ++i) {
        group.inserts.push_back(RandomTuple(&rng, pool, schema->arity()));
      }
      batch.push_back(std::move(group));
    }
    if (batch.empty()) continue;

    std::vector<AppliedDelta> applied;
    for (const RelationDelta& group : batch) {
      std::optional<AppliedDelta> one = ApplyDelta(&db, group, &error);
      ASSERT_TRUE(one.has_value()) << context << ": " << error;
      if (!one->empty()) applied.push_back(std::move(*one));
    }
    ASSERT_TRUE(standing->ApplyDeltas(applied, &backend, &error))
        << context << " round " << round << ": " << error;
    ExpectMatchesOracle(*standing, query, catalog, db,
                        context + " round " + std::to_string(round));
  }
}

TEST(DeltaOracleTest, PaperScenariosStayByteIdenticalUnderRandomDeltas) {
  std::uint64_t seed = 0xd3177a;
  for (const Scenario& scenario : AllScenarios()) {
    RunRandomRounds(scenario.query, scenario.catalog, scenario.database,
                    seed++, /*rounds=*/8, scenario.name);
  }
}

TEST(DeltaOracleTest, SeededWorkloadQueriesStayByteIdentical) {
  WorkloadGenOptions options;
  options.seed = 7;
  options.chain_length = 3;
  options.enumerable_relations = 2;
  options.decoy_relations = 1;
  options.domain_size = 8;
  options.tuples_per_relation = 16;
  options.num_queries = 6;
  options.negation_prob = 0.5;  // force anti-join coverage
  const WorkloadSpec spec = GenerateWorkload(options);

  std::uint64_t seed = 0xfeed;
  for (std::size_t qi = 0; qi < spec.queries.size(); ++qi) {
    std::string error;
    std::optional<UnionQuery> query =
        ParseUnionQuery(spec.queries[qi], &error);
    ASSERT_TRUE(query.has_value()) << error;
    RunRandomRounds(*query, spec.catalog, spec.database, seed++,
                    /*rounds=*/6, "workload query " + std::to_string(qi));
  }
}

}  // namespace
}  // namespace ucqn
