// Edge-case coverage that cuts across modules: boolean (0-ary) heads,
// constant heads, zero-ary relations, null-row plans flowing through the
// whole runtime, all-unsatisfiable unions, and termination guards.

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/answer_star.h"
#include "eval/domain_enum.h"
#include "eval/executor.h"
#include "eval/oracle.h"
#include "feasibility/compile.h"
#include "feasibility/feasible.h"
#include "mediator/unfold.h"
#include "schema/adornment.h"

namespace ucqn {
namespace {

TEST(BooleanQueryTest, ZeroAryHeadEndToEnd) {
  Catalog catalog = Catalog::MustParse("R/2: oo\nS/1: i\n");
  UnionQuery q = MustParseUnionQuery("Q() :- R(x, y), not S(y).");
  EXPECT_TRUE(IsFeasible(q, catalog));
  Database db = Database::MustParseFacts(R"(
    R("a", "b").
    S("b").
  )");
  DatabaseSource source(&db, &catalog);
  AnswerStarReport report = AnswerStar(q, catalog, &source);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.under.empty());  // the only witness is filtered

  Database db2 = Database::MustParseFacts("R(\"a\", \"c\").\n");
  DatabaseSource source2(&db2, &catalog);
  AnswerStarReport report2 = AnswerStar(q, catalog, &source2);
  ASSERT_EQ(report2.under.size(), 1u);
  EXPECT_TRUE(report2.under.begin()->empty());  // the 0-ary "true" tuple
}

TEST(BooleanQueryTest, ZeroAryRelations) {
  Catalog catalog = Catalog::MustParse("Flag/0:\nR/1: o\n");
  catalog.AddPattern("Flag", "");
  UnionQuery q = MustParseUnionQuery("Q(x) :- R(x), Flag().");
  EXPECT_TRUE(IsFeasible(q, catalog));
  Database db = Database::MustParseFacts("R(\"a\").\nFlag().\n");
  DatabaseSource source(&db, &catalog);
  ExecutionResult result =
      Execute(MustParseRule("Q(x) :- R(x), Flag()."), catalog, &source);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.tuples.size(), 1u);
  // Negated zero-ary atom filters everything when the flag is set.
  ExecutionResult neg =
      Execute(MustParseRule("Q(x) :- R(x), not Flag()."), catalog, &source);
  ASSERT_TRUE(neg.ok);
  EXPECT_TRUE(neg.tuples.empty());
}

TEST(ConstantHeadTest, FeasibilityAndExecution) {
  Catalog catalog = Catalog::MustParse("R/1: o\n");
  UnionQuery q = MustParseUnionQuery("Q(\"tag\", x) :- R(x).");
  EXPECT_TRUE(IsFeasible(q, catalog));
  Database db = Database::MustParseFacts("R(\"a\").\n");
  DatabaseSource source(&db, &catalog);
  ExecutionResult result = Execute(q, catalog, &source);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.tuples.size(), 1u);
  EXPECT_EQ((*result.tuples.begin())[0], Term::Constant("tag"));
}

TEST(NullRowTest, FullyUnanswerableDisjunctThroughAnswerStar) {
  // The overestimate's empty-body null row must execute and show up in Δ
  // with nulls, suppressing the numeric completeness bound.
  Catalog catalog = Catalog::MustParse("B/2: ii\nT/1: o\n");
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- B(x, y).
    Q(x) :- T(x).
  )");
  Database db = Database::MustParseFacts("T(\"t\").\nB(\"b1\", \"b2\").\n");
  DatabaseSource source(&db, &catalog);
  AnswerStarReport report = AnswerStar(q, catalog, &source);
  EXPECT_FALSE(report.complete);
  EXPECT_TRUE(report.delta_has_nulls);
  EXPECT_FALSE(report.completeness_lower_bound.has_value());
  EXPECT_TRUE(report.delta.count({Term::Null()}));
  EXPECT_TRUE(report.under.count({Term::Constant("t")}));
}

TEST(AllUnsatisfiableUnionTest, CollapsesToFalse) {
  Catalog catalog = Catalog::MustParse("R/1: o\n");
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- R(x), not R(x).
    Q(x) :- R(x), R(x), not R(x).
  )");
  FeasibleResult feasible = Feasible(q, catalog);
  EXPECT_TRUE(feasible.feasible);
  EXPECT_TRUE(feasible.plans.under.IsFalseQuery());
  EXPECT_TRUE(feasible.plans.over.IsFalseQuery());
  Database db = Database::MustParseFacts("R(\"a\").\n");
  DatabaseSource source(&db, &catalog);
  AnswerStarReport report = AnswerStar(q, catalog, &source);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.under.empty());
  EXPECT_EQ(source.stats().calls, 0u);
}

TEST(UnfoldGuardTest, CyclicViewsAreCaught) {
  ViewRegistry views = ViewRegistry::MustParse("V(x) :- V(x).");
  UnfoldResult result = Unfold(MustParseUnionQuery("Q(a) :- V(a)."), views);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("cyclic"), std::string::npos);
}

TEST(UnfoldGuardTest, MutualRecursionIsCaught) {
  ViewRegistry views = ViewRegistry::MustParse(R"(
    V(x) :- W(x).
    W(x) :- V(x).
  )");
  UnfoldResult result = Unfold(MustParseUnionQuery("Q(a) :- V(a)."), views);
  EXPECT_FALSE(result.ok);
}

TEST(DomainAssistTest, OrderableQueryGainsNothingButMatchesTruth) {
  Catalog catalog = Catalog::MustParse("R/2: oo\nS/1: i\n");
  UnionQuery q = MustParseUnionQuery("Q(x) :- R(x, y), not S(y).");
  Database db = Database::MustParseFacts(R"(
    R("a", "b").
    R("c", "d").
    S("b").
  )");
  DatabaseSource source(&db, &catalog);
  ImprovedUnderestimate improved = ImproveUnderestimate(q, catalog, &source);
  EXPECT_TRUE(improved.gained.empty());
  EXPECT_EQ(improved.tuples, OracleEvaluate(q, db));
}

TEST(EmptyCatalogTest, NothingIsExecutable) {
  Catalog catalog;
  UnionQuery q = MustParseUnionQuery("Q(x) :- R(x).");
  EXPECT_FALSE(IsExecutable(q, catalog));
  EXPECT_FALSE(IsOrderable(q, catalog));
  FeasibleResult feasible = Feasible(q, catalog);
  EXPECT_FALSE(feasible.feasible);
  EXPECT_EQ(feasible.path, FeasibleDecisionPath::kNullInOverestimate);
}

TEST(RelationWithoutPatternsTest, ExistsButUncallable) {
  Catalog catalog = Catalog::MustParse("R/1:\nS/1: o\n");
  // R is declared but has no patterns: literals over it are unanswerable
  // even with every variable bound.
  UnionQuery q = MustParseUnionQuery("Q(x) :- S(x), R(x).");
  FeasibleResult feasible = Feasible(q, catalog);
  EXPECT_FALSE(feasible.feasible);
  CompileResult compiled = Compile(q, catalog);
  ASSERT_EQ(compiled.diagnostics.size(), 1u);
  EXPECT_EQ(compiled.diagnostics[0].literal.relation(), "R");
}

TEST(SelfJoinTest, SameRelationDifferentPatterns) {
  Catalog catalog = Catalog::MustParse("E/2: oo io\n");
  UnionQuery q = MustParseUnionQuery("Q(x, z) :- E(x, y), E(y, z).");
  EXPECT_TRUE(IsFeasible(q, catalog));
  Database db = Database::MustParseFacts(R"(
    E("a", "b").
    E("b", "c").
  )");
  DatabaseSource source(&db, &catalog);
  ExecutionResult result = Execute(
      MustParseRule("Q(x, z) :- E(x, y), E(y, z)."), catalog, &source);
  ASSERT_TRUE(result.ok);
  ASSERT_EQ(result.tuples.size(), 1u);
  EXPECT_EQ(*result.tuples.begin(),
            (Tuple{Term::Constant("a"), Term::Constant("c")}));
}

TEST(DuplicateDisjunctTest, PlansTolerateSyntacticDuplicates) {
  // Example 3 produces two identical overestimate rules; everything
  // downstream (execution, containment, ANSWER*) must cope.
  Catalog catalog = Catalog::MustParse("R/1: o\n");
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- R(x).
    Q(x) :- R(x).
  )");
  EXPECT_TRUE(IsFeasible(q, catalog));
  Database db = Database::MustParseFacts("R(\"a\").\n");
  DatabaseSource source(&db, &catalog);
  AnswerStarReport report = AnswerStar(q, catalog, &source);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.under.size(), 1u);
}

}  // namespace
}  // namespace ucqn
