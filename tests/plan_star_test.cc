#include "feasibility/plan_star.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "schema/adornment.h"

namespace ucqn {
namespace {

// The running example of Section 4 (Examples 4-8).
Catalog RunningCatalog() {
  return Catalog::MustParse(R"(
    relation S/1: o
    relation R/2: oo
    relation B/2: ii
    relation T/2: oo
  )");
}

UnionQuery RunningQuery() {
  return MustParseUnionQuery(R"(
    Q(x, y) :- not S(z), R(x, z), B(x, y).
    Q(x, y) :- T(x, y).
  )");
}

TEST(PlanStarTest, Example4PlansMatchPaper) {
  PlanStarResult plans = PlanStar(RunningQuery(), RunningCatalog());

  // Q^u: only the T disjunct survives (Q1 is dismissed — B unanswerable).
  ASSERT_EQ(plans.under.size(), 1u);
  EXPECT_EQ(plans.under.disjuncts()[0], MustParseRule("Q(x, y) :- T(x, y)."));

  // Q^o: R moved in front of the negation, y nulled.
  ASSERT_EQ(plans.over.size(), 2u);
  EXPECT_EQ(plans.over.disjuncts()[0],
            MustParseRule("Q(x, null) :- R(x, z), not S(z)."));
  EXPECT_EQ(plans.over.disjuncts()[1], MustParseRule("Q(x, y) :- T(x, y)."));

  EXPECT_FALSE(plans.PlansEqual());
  EXPECT_TRUE(plans.over.ContainsNull());

  // Per-disjunct detail.
  ASSERT_EQ(plans.disjuncts.size(), 2u);
  EXPECT_FALSE(plans.disjuncts[0].under.has_value());
  ASSERT_EQ(plans.disjuncts[0].unanswerable.size(), 1u);
  EXPECT_EQ(plans.disjuncts[0].unanswerable[0].ToString(), "B(x, y)");
  EXPECT_TRUE(plans.disjuncts[1].unanswerable.empty());
}

TEST(PlanStarTest, BothPlansAreExecutable) {
  Catalog catalog = RunningCatalog();
  PlanStarResult plans = PlanStar(RunningQuery(), catalog);
  EXPECT_TRUE(IsExecutable(plans.under, catalog));
  EXPECT_TRUE(IsExecutable(plans.over, catalog));
}

TEST(PlanStarTest, OrderableQueryHasEqualPlans) {
  Catalog catalog = Catalog::MustParse(R"(
    relation B/3: ioo oio
    relation C/2: oo
    relation L/1: o
  )");
  UnionQuery q = MustParseUnionQuery(
      "Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).");
  PlanStarResult plans = PlanStar(q, catalog);
  EXPECT_TRUE(plans.PlansEqual());
  EXPECT_FALSE(plans.over.ContainsNull());
  // The shared plan is the reordered query.
  EXPECT_EQ(plans.under.disjuncts()[0].body()[0].relation(), "C");
}

TEST(PlanStarTest, UnsatisfiableDisjunctDroppedFromBothPlans) {
  Catalog catalog = Catalog::MustParse("R/1: o\nS/1: o\n");
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- R(x), not R(x).
    Q(x) :- S(x).
  )");
  PlanStarResult plans = PlanStar(q, catalog);
  EXPECT_EQ(plans.under.size(), 1u);
  EXPECT_EQ(plans.over.size(), 1u);
  EXPECT_TRUE(plans.PlansEqual());
  ASSERT_EQ(plans.disjuncts.size(), 2u);
  EXPECT_FALSE(plans.disjuncts[0].answerable.has_value());
  EXPECT_FALSE(plans.disjuncts[0].over.has_value());
}

TEST(PlanStarTest, FullyUnanswerableDisjunctBecomesNullRow) {
  // No pattern can call B at all without bindings; the answerable part is
  // empty, so the overestimate is the bare null-padded head.
  Catalog catalog = Catalog::MustParse("B/2: ii\nT/1: o\n");
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- B(x, y).
    Q(x) :- T(x).
  )");
  PlanStarResult plans = PlanStar(q, catalog);
  ASSERT_EQ(plans.over.size(), 2u);
  EXPECT_EQ(plans.over.disjuncts()[0], MustParseRule("Q(null)."));
  EXPECT_EQ(plans.under.size(), 1u);
}

TEST(PlanStarTest, FullyBoundLiteralIsAMembershipProbe) {
  // Once R binds x and y, B(x, y) is answerable even though B is
  // all-input: it executes as a membership probe ("bound is easier").
  Catalog catalog = Catalog::MustParse("R/2: oo\nB/2: ii\n");
  UnionQuery q = MustParseUnionQuery("Q(x, y) :- R(x, y), B(x, y).");
  PlanStarResult plans = PlanStar(q, catalog);
  EXPECT_TRUE(plans.PlansEqual());
  EXPECT_EQ(plans.over.disjuncts()[0],
            MustParseRule("Q(x, y) :- R(x, y), B(x, y)."));
}

TEST(PlanStarTest, HeadVariableInAnswerablePartNotNulled) {
  // B(x, w) is unanswerable (w can never be bound), but both head
  // variables are bound by R, so the overestimate carries no nulls.
  Catalog catalog = Catalog::MustParse("R/2: oo\nB/2: ii\n");
  UnionQuery q = MustParseUnionQuery("Q(x, y) :- R(x, y), B(x, w).");
  PlanStarResult plans = PlanStar(q, catalog);
  ASSERT_EQ(plans.over.size(), 1u);
  EXPECT_EQ(plans.over.disjuncts()[0], MustParseRule("Q(x, y) :- R(x, y)."));
  EXPECT_FALSE(plans.over.ContainsNull());
  EXPECT_TRUE(plans.under.IsFalseQuery());
}

TEST(PlanStarTest, ToStringMentionsBothPlans) {
  PlanStarResult plans = PlanStar(RunningQuery(), RunningCatalog());
  std::string text = plans.ToString();
  EXPECT_NE(text.find("underestimate"), std::string::npos);
  EXPECT_NE(text.find("overestimate"), std::string::npos);
  EXPECT_NE(text.find("null"), std::string::npos);
}

TEST(PlanStarTest, FalseQueryYieldsFalsePlans) {
  PlanStarResult plans = PlanStar(UnionQuery(), RunningCatalog());
  EXPECT_TRUE(plans.under.IsFalseQuery());
  EXPECT_TRUE(plans.over.IsFalseQuery());
  EXPECT_TRUE(plans.PlansEqual());
}

}  // namespace
}  // namespace ucqn
