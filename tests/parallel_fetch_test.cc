#include "runtime/parallel_source.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/executor.h"
#include "eval/source_adapters.h"
#include "runtime/caching_source.h"
#include "runtime/fault_injection.h"
#include "runtime/retrying_source.h"
#include "runtime/source_stack.h"

namespace ucqn {
namespace {

class ParallelFetchTest : public ::testing::Test {
 protected:
  ParallelFetchTest() {
    catalog_ = Catalog::MustParse("R/2: oo io\nS/1: o\nT/1: i\n");
    db_ = Database::MustParseFacts(R"(
      R("a", "b").
      R("c", "b").
      R("e", "f").
      S("b").
      T("b").
    )");
  }

  // Distinct keyed requests for R^io: {"k0"}, {"k1"}, ... plus the real
  // keys so some calls return tuples.
  static std::vector<std::vector<std::optional<Term>>> KeyedRequests(
      std::size_t n) {
    std::vector<std::vector<std::optional<Term>>> requests;
    const char* real[] = {"a", "c", "e"};
    for (std::size_t i = 0; i < n; ++i) {
      const std::string key =
          i < 3 ? real[i] : "k" + std::to_string(i);
      requests.push_back({Term::Constant(key), std::nullopt});
    }
    return requests;
  }

  Catalog catalog_;
  Database db_;
};

TEST_F(ParallelFetchTest, DefaultFetchBatchLoopsOverFetch) {
  DatabaseSource source(&db_, &catalog_);
  const AccessPattern keyed = AccessPattern::MustParse("io");
  const auto requests = KeyedRequests(4);
  std::vector<FetchResult> batched =
      source.FetchBatch("R", keyed, requests);
  ASSERT_EQ(batched.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    FetchResult single = source.Fetch("R", keyed, requests[i]);
    ASSERT_TRUE(batched[i].ok());
    EXPECT_EQ(batched[i].tuples, single.tuples);
  }
}

TEST_F(ParallelFetchTest, ResultsArriveInRequestOrderAtAnyParallelism) {
  DatabaseSource reference(&db_, &catalog_);
  const AccessPattern keyed = AccessPattern::MustParse("io");
  const auto requests = KeyedRequests(8);
  std::vector<FetchResult> expected =
      reference.FetchBatch("R", keyed, requests);

  for (std::size_t workers : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                              std::size_t{16}}) {
    DatabaseSource backend(&db_, &catalog_);
    ParallelSource parallel(&backend, workers);
    std::vector<FetchResult> got =
        parallel.FetchBatch("R", keyed, requests);
    ASSERT_EQ(got.size(), expected.size()) << "workers=" << workers;
    for (std::size_t i = 0; i < got.size(); ++i) {
      ASSERT_TRUE(got[i].ok());
      EXPECT_EQ(got[i].tuples, expected[i].tuples)
          << "workers=" << workers << " request=" << i;
    }
    EXPECT_EQ(parallel.parallel_stats().batches, 1u);
    EXPECT_EQ(parallel.parallel_stats().requests, requests.size());
    EXPECT_EQ(parallel.parallel_stats().parallel_batches,
              workers > 1 ? 1u : 0u);
  }
}

TEST_F(ParallelFetchTest, WaveVirtualTimeIsCeilOfRequestsOverWorkers) {
  // Satellite regression: with k = 8 requests of L = 100us each, a wave
  // on w workers must cost exactly ceil(k/w) x L of virtual time —
  // deterministically, not just on a lucky schedule.
  const AccessPattern keyed = AccessPattern::MustParse("io");
  const auto requests = KeyedRequests(8);
  struct Case {
    std::size_t workers;
    std::uint64_t expected_micros;
  };
  for (const Case& c : {Case{1, 800}, Case{2, 400}, Case{4, 200},
                        Case{8, 100}}) {
    for (int repetition = 0; repetition < 5; ++repetition) {
      SimulatedClock clock;
      DatabaseSource backend(&db_, &catalog_);
      FaultPlan plan;
      plan.latency_micros = 100;
      FaultInjectingSource slow(&backend, plan, &clock);
      ParallelSource parallel(&slow, c.workers, &clock);
      std::vector<FetchResult> got =
          parallel.FetchBatch("R", keyed, requests);
      ASSERT_EQ(got.size(), requests.size());
      EXPECT_EQ(clock.NowMicros(), c.expected_micros)
          << "workers=" << c.workers << " repetition=" << repetition;
    }
  }
}

TEST_F(ParallelFetchTest, ExecutorBatchAndReferenceLoopAgree) {
  const auto query = MustParseRule("Q(x) :- R(x, z), not S(z).");
  DatabaseSource batched_backend(&db_, &catalog_);
  ExecutionOptions batched;  // batch defaults on
  ExecutionResult with_batch =
      Execute(query, catalog_, &batched_backend, batched);

  DatabaseSource reference_backend(&db_, &catalog_);
  ExecutionOptions reference;
  reference.batch = false;
  ExecutionResult without =
      Execute(query, catalog_, &reference_backend, reference);

  ASSERT_TRUE(with_batch.ok) << with_batch.error;
  ASSERT_TRUE(without.ok) << without.error;
  EXPECT_EQ(with_batch.tuples, without.tuples);
}

TEST_F(ParallelFetchTest, ExecutorWaveDedupsIdenticalCalls) {
  // R yields bindings z=b (twice) and z=f; the T(z) wave then carries two
  // identical requests, which must collapse to one source call even with
  // no cache configured anywhere.
  const auto query = MustParseRule("Q(x) :- R(x, z), T(z).");
  DatabaseSource batched_backend(&db_, &catalog_);
  ExecutionResult with_batch = Execute(query, catalog_, &batched_backend);

  DatabaseSource reference_backend(&db_, &catalog_);
  ExecutionOptions reference;
  reference.batch = false;
  ExecutionResult without =
      Execute(query, catalog_, &reference_backend, reference);

  ASSERT_TRUE(with_batch.ok) << with_batch.error;
  ASSERT_TRUE(without.ok) << without.error;
  EXPECT_EQ(with_batch.tuples, without.tuples);
  EXPECT_EQ(reference_backend.stats().calls, 4u);  // 1 scan + 3 probes
  EXPECT_EQ(batched_backend.stats().calls, 3u);    // 1 scan + 2 deduped
}

TEST_F(ParallelFetchTest, CachingSourceSingleFlightsDuplicateMisses) {
  DatabaseSource backend(&db_, &catalog_);
  CachingSource cached(&backend);
  const AccessPattern keyed = AccessPattern::MustParse("io");
  const std::vector<std::vector<std::optional<Term>>> requests = {
      {Term::Constant("a"), std::nullopt},
      {Term::Constant("c"), std::nullopt},
      {Term::Constant("a"), std::nullopt},
  };
  std::vector<FetchResult> first = cached.FetchBatch("R", keyed, requests);
  ASSERT_EQ(first.size(), 3u);
  EXPECT_EQ(first[0].tuples, first[2].tuples);
  // Two distinct keys miss; the duplicate rides the single flight as a
  // hit. Exactly what sequential dispatch would have counted.
  EXPECT_EQ(backend.stats().calls, 2u);
  EXPECT_EQ(cached.cache_stats().misses, 2u);
  EXPECT_EQ(cached.cache_stats().hits, 1u);

  std::vector<FetchResult> second = cached.FetchBatch("R", keyed, requests);
  EXPECT_EQ(backend.stats().calls, 2u);  // everything cached now
  EXPECT_EQ(cached.cache_stats().hits, 4u);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(second[i].tuples, first[i].tuples);
  }
}

TEST_F(ParallelFetchTest, RetryingSourceRebatchesOnlyTheFailures) {
  DatabaseSource backend(&db_, &catalog_);
  FaultPlan faults;
  faults.fail_first_per_key = 1;  // every signature fails once, then works
  FaultInjectingSource flaky(&backend, faults);
  RetryPolicy policy;
  policy.max_attempts = 3;
  RetryingSource retrying(&flaky, policy);
  const AccessPattern keyed = AccessPattern::MustParse("io");
  std::vector<FetchResult> got =
      retrying.FetchBatch("R", keyed, KeyedRequests(3));
  for (const FetchResult& result : got) EXPECT_TRUE(result.ok());
  // Round 1: three first attempts fail. Round 2: the three retries fly
  // together and succeed.
  EXPECT_EQ(retrying.retry_stats().attempts, 6u);
  EXPECT_EQ(retrying.retry_stats().retries, 3u);
  EXPECT_EQ(retrying.retry_stats().successes, 3u);
  EXPECT_EQ(retrying.retry_stats().giveups, 0u);
}

TEST_F(ParallelFetchTest, BatchBudgetIsDebitedPerSubCallInRequestOrder) {
  DatabaseSource backend(&db_, &catalog_);
  CallBudget budget;
  budget.max_calls = 2;
  RetryingSource retrying(&backend, RetryPolicy{}, budget);
  const AccessPattern keyed = AccessPattern::MustParse("io");
  std::vector<FetchResult> got =
      retrying.FetchBatch("R", keyed, KeyedRequests(4));
  ASSERT_EQ(got.size(), 4u);
  EXPECT_TRUE(got[0].ok());
  EXPECT_TRUE(got[1].ok());
  EXPECT_EQ(got[2].status, FetchStatus::kBudgetExhausted);
  EXPECT_EQ(got[3].status, FetchStatus::kBudgetExhausted);
  EXPECT_EQ(retrying.retry_stats().attempts, 2u);
  EXPECT_EQ(retrying.retry_stats().budget_refusals, 2u);
}

TEST_F(ParallelFetchTest, InjectedFaultsAreScheduleIndependent) {
  // The same fault plan must produce the same per-request outcome whether
  // the wave runs sequentially or on four threads: seeding is derived
  // from each request's content, not its arrival order.
  const AccessPattern keyed = AccessPattern::MustParse("io");
  const auto requests = KeyedRequests(12);
  FaultPlan plan;
  plan.failure_probability = 0.4;
  plan.latency_micros = 50;
  plan.latency_jitter_micros = 25;
  plan.seed = 7;

  auto run = [&](std::size_t workers) {
    SimulatedClock clock;
    DatabaseSource backend(&db_, &catalog_);
    FaultInjectingSource flaky(&backend, plan, &clock);
    ParallelSource parallel(&flaky, workers, &clock);
    return parallel.FetchBatch("R", keyed, requests);
  };
  std::vector<FetchResult> sequential = run(1);
  for (int repetition = 0; repetition < 5; ++repetition) {
    std::vector<FetchResult> parallel = run(4);
    ASSERT_EQ(parallel.size(), sequential.size());
    for (std::size_t i = 0; i < sequential.size(); ++i) {
      EXPECT_EQ(parallel[i].ok(), sequential[i].ok()) << "request=" << i;
      EXPECT_EQ(parallel[i].error, sequential[i].error) << "request=" << i;
      EXPECT_EQ(parallel[i].tuples, sequential[i].tuples) << "request=" << i;
    }
  }
}

TEST_F(ParallelFetchTest, CompositeSourceForwardsTheWholeBatch) {
  // The batch must reach the routed backend as one unit so its own
  // decorators see the wave: the caching layer behind the composite
  // single-flights the duplicate.
  DatabaseSource backend(&db_, &catalog_);
  CachingSource cached(&backend);
  CompositeSource mediator;
  mediator.Route("R", &cached);
  const AccessPattern keyed = AccessPattern::MustParse("io");
  const std::vector<std::vector<std::optional<Term>>> requests = {
      {Term::Constant("a"), std::nullopt},
      {Term::Constant("a"), std::nullopt},
  };
  std::vector<FetchResult> got = mediator.FetchBatch("R", keyed, requests);
  ASSERT_EQ(got.size(), 2u);
  EXPECT_EQ(got[0].tuples, got[1].tuples);
  EXPECT_EQ(backend.stats().calls, 1u);
  EXPECT_EQ(cached.cache_stats().hits, 1u);
}

TEST_F(ParallelFetchTest, SourceStackWiresTheDispatcherAtTheBottom) {
  DatabaseSource backend(&db_, &catalog_);
  RuntimeOptions options;
  options.parallelism = 4;
  options.cache = true;
  options.metering = true;
  EXPECT_TRUE(options.Enabled());
  SourceStack stack(&backend, options);
  ASSERT_NE(stack.parallel(), nullptr);
  EXPECT_EQ(stack.parallel()->workers(), 4u);

  const AccessPattern keyed = AccessPattern::MustParse("io");
  std::vector<FetchResult> got =
      stack.source()->FetchBatch("R", keyed, KeyedRequests(8));
  for (const FetchResult& result : got) EXPECT_TRUE(result.ok());
  RuntimeStats stats = stack.stats();
  EXPECT_EQ(stats.parallel_waves, 1u);
  EXPECT_EQ(stats.batched_requests, 8u);
  EXPECT_EQ(stats.cache_misses, 8u);
  // The meter (above the dispatcher) timed the wave as one unit.
  EXPECT_EQ(stack.meter()->totals().batches, 1u);
  EXPECT_EQ(stack.meter()->totals().batch_size.max_micros(), 8u);
  const std::string text = stats.ToString();
  EXPECT_NE(text.find("parallel_waves"), std::string::npos);
}

}  // namespace
}  // namespace ucqn
