#include "eval/oracle.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace ucqn {
namespace {

Database GraphDb() {
  return Database::MustParseFacts(R"(
    E("a", "b").
    E("b", "c").
    E("c", "a").
    E("a", "a").
    Red("a").
    Red("c").
  )");
}

TEST(OracleTest, SimpleJoin) {
  Database db = GraphDb();
  std::set<Tuple> result =
      OracleEvaluate(MustParseRule("Q(x, z) :- E(x, y), E(y, z)."), db);
  // Paths of length 2: a→b→c, b→c→a, c→a→b, c→a→a, a→a→b, a→a→a.
  EXPECT_EQ(result.size(), 6u);
  EXPECT_TRUE(result.count({Term::Constant("a"), Term::Constant("c")}));
}

TEST(OracleTest, NegationFiltersBindings) {
  Database db = GraphDb();
  std::set<Tuple> result = OracleEvaluate(
      MustParseRule("Q(x) :- E(x, y), not Red(y)."), db);
  // Edges into non-red nodes: a→b only ⇒ {a}.
  ASSERT_EQ(result.size(), 1u);
  EXPECT_TRUE(result.count({Term::Constant("a")}));
}

TEST(OracleTest, ConstantsInBody) {
  Database db = GraphDb();
  std::set<Tuple> result =
      OracleEvaluate(MustParseRule("Q(y) :- E(\"a\", y)."), db);
  EXPECT_EQ(result.size(), 2u);  // b and a
}

TEST(OracleTest, UnsatisfiableBodyYieldsNothing) {
  Database db = GraphDb();
  EXPECT_TRUE(OracleEvaluate(
                  MustParseRule("Q(x) :- Red(x), not Red(x)."), db)
                  .empty());
}

TEST(OracleTest, EmptyBodyEmitsGroundHead) {
  Database db;
  std::set<Tuple> result =
      OracleEvaluate(MustParseRule("Q(\"c\", null)."), db);
  ASSERT_EQ(result.size(), 1u);
  EXPECT_EQ(*result.begin(), (Tuple{Term::Constant("c"), Term::Null()}));
}

TEST(OracleTest, MissingRelationMeansEmpty) {
  Database db = GraphDb();
  EXPECT_TRUE(
      OracleEvaluate(MustParseRule("Q(x) :- Missing(x)."), db).empty());
  // A negated missing relation is vacuously true.
  std::set<Tuple> result = OracleEvaluate(
      MustParseRule("Q(x) :- Red(x), not Missing(x)."), db);
  EXPECT_EQ(result.size(), 2u);
}

TEST(OracleTest, UnionSemantics) {
  Database db = GraphDb();
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- Red(x).
    Q(x) :- E(x, x).
  )");
  std::set<Tuple> result = OracleEvaluate(q, db);
  EXPECT_EQ(result.size(), 2u);  // {a, c}; a from both disjuncts
}

TEST(OracleTest, SetSemanticsDeduplicates) {
  Database db = GraphDb();
  // x has many witnesses y; answers are deduplicated.
  std::set<Tuple> result =
      OracleEvaluate(MustParseRule("Q(x) :- E(x, y)."), db);
  EXPECT_EQ(result.size(), 3u);  // a, b, c
}

}  // namespace
}  // namespace ucqn
