#include "gen/scenarios.h"

#include <gtest/gtest.h>

#include "feasibility/answerable.h"
#include "feasibility/feasible.h"
#include "schema/adornment.h"

namespace ucqn {
namespace {

// Each paper example's compile-time verdicts must come out exactly as the
// paper states them (Definition 3/4/5 ladder: executable ⇒ orderable ⇒
// feasible).
TEST(ScenariosTest, CompileTimeVerdictsMatchPaper) {
  for (const Scenario& s : AllScenarios()) {
    EXPECT_EQ(IsExecutable(s.query, s.catalog), s.executable) << s.name;
    EXPECT_EQ(IsOrderable(s.query, s.catalog), s.orderable) << s.name;
    EXPECT_EQ(IsFeasible(s.query, s.catalog), s.feasible) << s.name;
  }
}

TEST(ScenariosTest, LadderOfNotions) {
  // Executable ⇒ orderable ⇒ feasible must hold for all scenarios.
  for (const Scenario& s : AllScenarios()) {
    if (s.executable) {
      EXPECT_TRUE(s.orderable) << s.name;
    }
    if (s.orderable) {
      EXPECT_TRUE(s.feasible) << s.name;
    }
  }
}

TEST(ScenariosTest, SchemasCoverQueries) {
  for (const Scenario& s : AllScenarios()) {
    std::string error;
    EXPECT_TRUE(s.catalog.CoversQuery(s.query, &error)) << s.name << ": "
                                                        << error;
  }
}

TEST(ScenariosTest, MetadataPresent) {
  std::set<std::string> names;
  for (const Scenario& s : AllScenarios()) {
    EXPECT_FALSE(s.name.empty());
    EXPECT_FALSE(s.description.empty());
    EXPECT_TRUE(names.insert(s.name).second) << "duplicate " << s.name;
  }
  EXPECT_EQ(names.size(), 8u);
}

TEST(ScenariosTest, Example3EquivalentExecutableForm) {
  // The paper states Example 3's union is equivalent to
  // Q'(a) :- L(i), B(i, a, t); FEASIBLE's overestimate is that rewriting.
  Scenario s = Example3FeasibleNotOrderable();
  FeasibleResult result = Feasible(s.query, s.catalog);
  ASSERT_TRUE(result.feasible);
  for (const ConjunctiveQuery& d : result.plans.over.disjuncts()) {
    ASSERT_EQ(d.body().size(), 2u);
    EXPECT_EQ(d.body()[0].relation(), "L");
    EXPECT_EQ(d.body()[1].relation(), "B");
  }
}

TEST(ScenariosTest, RunningExampleSharesQueryAcrossVariants) {
  // Examples 4-8 are the same query/schema on different instances.
  Scenario e4 = Example4UnderOver();
  for (const Scenario& s :
       {Example6ForeignKey(), Example7Nulls(), Example8DomainEnum()}) {
    EXPECT_EQ(s.query, e4.query) << s.name;
    EXPECT_EQ(s.catalog.ToString(), e4.catalog.ToString()) << s.name;
  }
}

}  // namespace
}  // namespace ucqn
