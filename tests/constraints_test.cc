#include "constraints/inclusion.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/oracle.h"
#include "gen/random_instance.h"
#include "gen/random_query.h"

namespace ucqn {
namespace {

TEST(InclusionDependencyTest, ParseAndPrint) {
  InclusionDependency dep = InclusionDependency::MustParse("R[1] c= S[0]");
  EXPECT_EQ(dep.from_relation(), "R");
  EXPECT_EQ(dep.from_columns(), (std::vector<std::size_t>{1}));
  EXPECT_EQ(dep.to_relation(), "S");
  EXPECT_EQ(dep.to_columns(), (std::vector<std::size_t>{0}));
  EXPECT_EQ(dep.ToString(), "R[1] c= S[0]");
  InclusionDependency multi =
      InclusionDependency::MustParse("Orders[1,2] c= Pairs[0,1]");
  EXPECT_EQ(multi.from_columns().size(), 2u);
  EXPECT_EQ(InclusionDependency::MustParse(multi.ToString()), multi);
}

TEST(InclusionDependencyTest, ParseErrors) {
  std::string error;
  EXPECT_FALSE(InclusionDependency::Parse("R[1] = S[0]", &error).has_value());
  EXPECT_FALSE(InclusionDependency::Parse("R1 c= S[0]", &error).has_value());
  EXPECT_FALSE(InclusionDependency::Parse("R[] c= S[0]", &error).has_value());
  EXPECT_FALSE(InclusionDependency::Parse("R[x] c= S[0]", &error).has_value());
  EXPECT_FALSE(
      InclusionDependency::Parse("R[1,2] c= S[0]", &error).has_value());
}

TEST(InclusionDependencyTest, HoldsIn) {
  InclusionDependency dep = InclusionDependency::MustParse("R[1] c= S[0]");
  Database good = Database::MustParseFacts(R"(
    R("a", "k1").
    R("b", "k2").
    S("k1").
    S("k2").
  )");
  EXPECT_TRUE(dep.HoldsIn(good));
  Database bad = Database::MustParseFacts(R"(
    R("a", "k1").
    S("k2").
  )");
  EXPECT_FALSE(dep.HoldsIn(bad));
  // Empty `from` side holds vacuously.
  EXPECT_TRUE(dep.HoldsIn(Database::MustParseFacts("S(\"k\").\n")));
  EXPECT_TRUE(dep.HoldsIn(Database()));
}

TEST(ConstraintSetTest, ParseMultiLine) {
  ConstraintSet set = ConstraintSet::MustParse(R"(
    # foreign keys
    R[1] c= S[0]
    T[0] c= S[0]   % another one
  )");
  EXPECT_EQ(set.size(), 2u);
  Database db = Database::MustParseFacts(R"(
    R("a", "k").
    T("k", "x").
    S("k").
  )");
  EXPECT_TRUE(set.HoldsIn(db));
}

TEST(RefutedByConstraintsTest, Example6Disjunct) {
  // R(x,z), not S(z) is unsatisfiable under R[1] ⊆ S[0].
  ConstraintSet set = ConstraintSet::MustParse("R[1] c= S[0]");
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x, z), not S(z).");
  EXPECT_TRUE(RefutedByConstraints(q, set));
  // Without the dependency: satisfiable.
  EXPECT_FALSE(RefutedByConstraints(q, ConstraintSet()));
  // The positive variant is untouched.
  EXPECT_FALSE(RefutedByConstraints(
      MustParseRule("Q(x) :- R(x, z), S(z)."), set));
}

TEST(RefutedByConstraintsTest, TransitiveChase) {
  // R[1] ⊆ S[0] and S[0] ⊆ T[0] together refute ¬T(z).
  ConstraintSet set = ConstraintSet::MustParse(R"(
    R[1] c= S[0]
    S[0] c= T[0]
  )");
  EXPECT_TRUE(RefutedByConstraints(
      MustParseRule("Q(x) :- R(x, z), not T(z)."), set));
}

TEST(RefutedByConstraintsTest, PartialCoverageDoesNotRefute) {
  // S is binary but only column 0 is pinned: the dependency asserts SOME
  // S(z, w) exists, which does not contradict ¬S(z, y) for the specific y.
  ConstraintSet set = ConstraintSet::MustParse("R[1] c= S[0]");
  EXPECT_FALSE(RefutedByConstraints(
      MustParseRule("Q(x) :- R(x, z), U(y), not S(z, y)."), set));
}

TEST(RefutedByConstraintsTest, MultiColumnCoverage) {
  ConstraintSet set = ConstraintSet::MustParse("R[0,1] c= S[1,0]");
  // R(x,z) implies S(z,x): ¬S(z,x) is refuted, ¬S(x,z) is not.
  EXPECT_TRUE(RefutedByConstraints(
      MustParseRule("Q(x) :- R(x, z), not S(z, x)."), set));
  EXPECT_FALSE(RefutedByConstraints(
      MustParseRule("Q(x) :- R(x, z), not S(x, z)."), set));
}

TEST(RefutedByConstraintsTest, UnsatisfiableQueryAlwaysRefuted) {
  EXPECT_TRUE(RefutedByConstraints(
      MustParseRule("Q(x) :- R(x), not R(x)."), ConstraintSet()));
}

TEST(PruneWithConstraintsTest, DropsOnlyRefutedDisjuncts) {
  ConstraintSet set = ConstraintSet::MustParse("R[1] c= S[0]");
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- R(x, z), not S(z).
    Q(x) :- T(x, x).
  )");
  UnionQuery pruned = PruneWithConstraints(q, set);
  ASSERT_EQ(pruned.size(), 1u);
  EXPECT_EQ(pruned.disjuncts()[0].body()[0].relation(), "T");
}

TEST(ChaseQueryTest, AddsImpliedAtomsOnce) {
  ConstraintSet set = ConstraintSet::MustParse(R"(
    R[1] c= S[0]
    S[0] c= T[0]
  )");
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x, z), not U(z).");
  ConjunctiveQuery chased = ChaseQuery(q, set);
  EXPECT_TRUE(chased.PositiveBodyContains(Atom("S", {Term::Variable("z")})));
  EXPECT_TRUE(chased.PositiveBodyContains(Atom("T", {Term::Variable("z")})));
  EXPECT_EQ(chased.body().size(), 4u);
  // Idempotent.
  EXPECT_EQ(ChaseQuery(chased, set), chased);
}

TEST(ChaseQueryTest, PreservesAnswersOnLegalInstances) {
  ConstraintSet set = ConstraintSet::MustParse("R[1] c= S[0]");
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x, z), T(z, w).");
  ConjunctiveQuery chased = ChaseQuery(q, set);
  std::mt19937 rng(11);
  Catalog catalog = Catalog::MustParse("R/2: oo\nS/1: o\nT/2: oo\n");
  for (int i = 0; i < 5; ++i) {
    Database db =
        RandomDatabaseWithInclusion(&rng, catalog, {}, "R", 1, "S", 0);
    EXPECT_EQ(OracleEvaluate(chased, db), OracleEvaluate(q, db));
  }
}

// Soundness sweep: on random instances *satisfying* the dependency, a
// refuted disjunct must indeed return no tuples.
class RefutationSoundnessTest : public ::testing::TestWithParam<int> {};

TEST_P(RefutationSoundnessTest, RefutedMeansEmptyOnLegalInstances) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) + 4242);
  Catalog catalog = Catalog::MustParse("R/2: oo\nS/1: o\nT/2: oo\n");
  ConstraintSet set = ConstraintSet::MustParse("R[1] c= S[0]");
  RandomQueryOptions options;
  options.num_literals = 3;
  options.num_variables = 3;
  options.negation_prob = 0.4;
  options.head_arity = 1;
  RandomInstanceOptions instance_options;
  instance_options.domain_size = 5;
  for (int i = 0; i < 15; ++i) {
    ConjunctiveQuery q = RandomCq(&rng, catalog, options);
    if (!RefutedByConstraints(q, set)) continue;
    Database db = RandomDatabaseWithInclusion(&rng, catalog,
                                              instance_options, "R", 1,
                                              "S", 0);
    ASSERT_TRUE(set.HoldsIn(db));
    EXPECT_TRUE(OracleEvaluate(q, db).empty()) << q.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RefutationSoundnessTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace ucqn
