#include "gen/hard_instances.h"

#include <gtest/gtest.h>

#include "containment/ucqn_containment.h"
#include "feasibility/feasible.h"

namespace ucqn {
namespace {

TEST(SubsetExplosionTest, NodeCountsGrowExponentiallyWhenNotContained) {
  std::uint64_t previous = 0;
  for (int k = 2; k <= 8; ++k) {
    ContainmentInstance inst = SubsetExplosionInstance(k, false);
    ContainmentStats stats;
    EXPECT_FALSE(Contained(inst.P, inst.Q, &stats));
    EXPECT_GE(stats.nodes_expanded, (1ull << k))
        << "k=" << k << " should visit all 2^k subsets";
    EXPECT_GT(stats.nodes_expanded, previous);
    previous = stats.nodes_expanded;
  }
}

TEST(SubsetExplosionTest, ContainedVariantIsCheap) {
  ContainmentInstance inst = SubsetExplosionInstance(10, true);
  ContainmentStats stats;
  EXPECT_TRUE(Contained(inst.P, inst.Q, &stats));
  EXPECT_LT(stats.nodes_expanded, 20u);
}

TEST(ChainTest, DepthGrowsLinearly) {
  for (int k : {2, 5, 9}) {
    ContainmentInstance inst = ChainInstance(k, true);
    ContainmentStats stats;
    EXPECT_TRUE(Contained(inst.P, inst.Q, &stats));
    EXPECT_EQ(stats.max_depth, static_cast<std::uint64_t>(k));
  }
}

TEST(ChainTest, NotContainedVariantStaysPolynomial) {
  ContainmentInstance inst = ChainInstance(10, false);
  ContainmentStats stats;
  EXPECT_FALSE(Contained(inst.P, inst.Q, &stats));
  EXPECT_LT(stats.nodes_expanded, 200u);
}

TEST(HardFeasibilityTest, TakesContainmentPathAndMatchesExpectation) {
  for (int k = 1; k <= 5; ++k) {
    for (bool feasible : {false, true}) {
      HardFeasibilityInstance inst = HardFeasibility(k, feasible);
      FeasibleResult result = Feasible(inst.query, inst.catalog);
      EXPECT_EQ(result.path, FeasibleDecisionPath::kContainment)
          << "k=" << k;
      EXPECT_EQ(result.feasible, inst.feasible)
          << "k=" << k << " feasible=" << feasible;
    }
  }
}

TEST(HardInstancesTest, QueriesAreSafe) {
  ContainmentInstance subset = SubsetExplosionInstance(3, true);
  EXPECT_TRUE(subset.Q.IsSafe());
  EXPECT_TRUE(subset.P.IsSafe());
  ContainmentInstance chain = ChainInstance(3, false);
  EXPECT_TRUE(chain.Q.IsSafe());
  HardFeasibilityInstance feas = HardFeasibility(3, true);
  EXPECT_TRUE(feas.query.IsSafe());
}

}  // namespace
}  // namespace ucqn
