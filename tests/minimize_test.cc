#include "containment/minimize.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "containment/cq_containment.h"

namespace ucqn {
namespace {

TEST(MinimizeCqTest, AlreadyMinimal) {
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x, y), S(y).");
  EXPECT_EQ(MinimizeCq(q), q);
}

TEST(MinimizeCqTest, Example9Core) {
  // Paper Example 9: Q(x) :- F(x), B(x), B(y), F(z) minimizes to
  // Q(x) :- F(x), B(x).
  ConjunctiveQuery q = MustParseRule("Q(x) :- F(x), B(x), B(y), F(z).");
  ConjunctiveQuery m = MinimizeCq(q);
  EXPECT_EQ(m.body().size(), 2u);
  EXPECT_TRUE(CqContained(m, q));
  EXPECT_TRUE(CqContained(q, m));
  EXPECT_EQ(m, MustParseRule("Q(x) :- F(x), B(x)."));
}

TEST(MinimizeCqTest, RedundantJoinCollapses) {
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x, y), R(x, z).");
  ConjunctiveQuery m = MinimizeCq(q);
  EXPECT_EQ(m.body().size(), 1u);
}

TEST(MinimizeCqTest, HeadVariablesProtectLiterals) {
  // Both atoms carry head variables: nothing can be dropped.
  ConjunctiveQuery q = MustParseRule("Q(x, z) :- R(x, y), R(z, y).");
  EXPECT_EQ(MinimizeCq(q).body().size(), 2u);
}

TEST(MinimizeCqTest, ConstantsBlockFolding) {
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x, \"a\"), R(x, y).");
  // R(x,y) folds onto R(x,"a") but not vice versa.
  ConjunctiveQuery m = MinimizeCq(q);
  EXPECT_EQ(m, MustParseRule("Q(x) :- R(x, \"a\")."));
}

TEST(MinimizeCqTest, MinimizationIsEquivalencePreserving) {
  ConjunctiveQuery q = MustParseRule(
      "Q(x) :- E(x, y), E(y, z), E(x, w), E(w, v), E(v, u).");
  ConjunctiveQuery m = MinimizeCq(q);
  EXPECT_TRUE(CqContained(m, q));
  EXPECT_TRUE(CqContained(q, m));
  EXPECT_LE(m.body().size(), q.body().size());
}

TEST(MinimizeUcqTest, DropsAbsorbedDisjuncts) {
  // Paper Example 10: the minimal union is F(x).
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- F(x), G(x).
    Q(x) :- F(x), H(x), B(y).
    Q(x) :- F(x).
  )");
  UnionQuery m = MinimizeUcq(q);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.disjuncts()[0], MustParseRule("Q(x) :- F(x)."));
}

TEST(MinimizeUcqTest, KeepsIncomparableDisjuncts) {
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- R(x).
    Q(x) :- S(x).
  )");
  EXPECT_EQ(MinimizeUcq(q).size(), 2u);
}

TEST(MinimizeUcqTest, EquivalentDuplicatesKeepOne) {
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- R(x, y).
    Q(x) :- R(x, z), R(x, w).
  )");
  UnionQuery m = MinimizeUcq(q);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.disjuncts()[0].body().size(), 1u);
}

TEST(MinimizeUcqTest, MinimizesEachDisjunctBody) {
  UnionQuery q = MustParseUnionQuery("Q(x) :- R(x), R(x), S(x).");
  UnionQuery m = MinimizeUcq(q);
  ASSERT_EQ(m.size(), 1u);
  EXPECT_EQ(m.disjuncts()[0].body().size(), 2u);
}

TEST(MinimizeUcqTest, EmptyUnionStaysEmpty) {
  EXPECT_TRUE(MinimizeUcq(UnionQuery()).IsFalseQuery());
}

TEST(MinimizeCqnTest, RedundantPositiveLiteralDropped) {
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x, y), R(x, z), not S(x).");
  ConjunctiveQuery m = MinimizeCqn(q);
  EXPECT_EQ(m.body().size(), 2u);
  EXPECT_TRUE(Equivalent(UnionQuery(m), UnionQuery(q)));
}

TEST(MinimizeCqnTest, NegativeLiteralsAreNotRedundantByDefault) {
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x), not S(x), not T(x).");
  EXPECT_EQ(MinimizeCqn(q), q);
}

TEST(MinimizeCqnTest, DuplicateNegativeLiteralDropped) {
  // A subsumed negation: ¬S(x) appears twice through different variables
  // mapped together.
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x), not S(x), not S(x).");
  ConjunctiveQuery m = MinimizeCqn(q);
  EXPECT_EQ(m.body().size(), 2u);
}

TEST(MinimizeCqnTest, SafetyPreservingOnly) {
  // Dropping R(x,y) would leave y only under negation; the only legal
  // removal is none (the query is already minimal among safe forms).
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x, y), not S(y).");
  EXPECT_EQ(MinimizeCqn(q), q);
}

TEST(MinimizeCqnTest, UnsatisfiableQueryUntouched) {
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x), not R(x).");
  EXPECT_EQ(MinimizeCqn(q), q);
}

TEST(MinimizeUcqnTest, AbsorbedAndUnsatisfiableDisjunctsDropped) {
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- R(x), not S(x).
    Q(x) :- R(x), S(x).
    Q(x) :- R(x), T(x).
    Q(x) :- R(x), not R(x).
  )");
  // Disjunct 3 is absorbed by the UNION of 1 and 2 (case split on S), not
  // by either alone — exactly where single-witness UCQ reasoning fails.
  UnionQuery m = MinimizeUcqn(q);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_TRUE(Equivalent(m, q));
}

TEST(MinimizeUcqnTest, PreservesEquivalenceOnPaperExample3) {
  UnionQuery q = MustParseUnionQuery(R"(
    Q(a) :- B(i, a, t), L(i), B(i2, a2, t).
    Q(a) :- B(i, a, t), L(i), not B(i2, a2, t).
  )");
  UnionQuery m = MinimizeUcqn(q);
  EXPECT_TRUE(Contained(m, q));
  EXPECT_TRUE(Contained(q, m));
  EXPECT_LE(m.size(), q.size());
}

}  // namespace
}  // namespace ucqn
