#include "eval/planner.h"

#include <gtest/gtest.h>

#include <random>

#include "ast/parser.h"
#include "eval/executor.h"
#include "eval/oracle.h"
#include "gen/random_instance.h"
#include "gen/random_query.h"
#include "schema/adornment.h"

namespace ucqn {
namespace {

TEST(CardinalityEstimatesTest, FromDatabaseAndFallback) {
  Database db = Database::MustParseFacts(R"(
    R("a", "b").
    R("c", "d").
    S("x").
  )");
  CardinalityEstimates est = CardinalityEstimates::FromDatabase(db);
  EXPECT_DOUBLE_EQ(est.Get("R"), 2.0);
  EXPECT_DOUBLE_EQ(est.Get("S"), 1.0);
  EXPECT_DOUBLE_EQ(est.Get("T", 42.0), 42.0);
  est.Set("R", 100.0);
  EXPECT_DOUBLE_EQ(est.Get("R"), 100.0);
}

TEST(CardinalityEstimatesTest, FromCatalogAnnotations) {
  Catalog catalog = Catalog::MustParse("Big/2: oo @9000\nSmall/1: o @3\n");
  CardinalityEstimates est = CardinalityEstimates::FromCatalog(catalog);
  EXPECT_DOUBLE_EQ(est.Get("Big"), 9000.0);
  EXPECT_DOUBLE_EQ(est.Get("Small"), 3.0);
  EXPECT_DOUBLE_EQ(est.Get("Other", 7.0), 7.0);
}

TEST(OptimizeLiteralOrderTest, PrefersSmallRelationFirst) {
  Catalog catalog = Catalog::MustParse("Big/2: oo io\nSmall/1: o\n");
  CardinalityEstimates est;
  est.Set("Big", 10000);
  est.Set("Small", 5);
  ConjunctiveQuery q = MustParseRule("Q(x, y) :- Big(x, y), Small(x).");
  std::optional<ConjunctiveQuery> plan =
      OptimizeLiteralOrder(q, catalog, est);
  ASSERT_TRUE(plan.has_value());
  // Small goes first; Big is then probed through Big^io.
  EXPECT_EQ(plan->body()[0].relation(), "Small");
  EXPECT_TRUE(IsExecutable(*plan, catalog));
}

TEST(OptimizeLiteralOrderTest, FiltersScheduledBeforeExpansions) {
  Catalog catalog = Catalog::MustParse("R/1: o\nProbe/1: i\nFan/2: io\n");
  CardinalityEstimates est;
  est.Set("R", 100);
  est.Set("Fan", 10000);
  ConjunctiveQuery q =
      MustParseRule("Q(x, y) :- R(x), Fan(x, y), Probe(x).");
  std::optional<ConjunctiveQuery> plan =
      OptimizeLiteralOrder(q, catalog, est);
  ASSERT_TRUE(plan.has_value());
  // Probe(x) is a pure filter once x is bound: it must run before Fan.
  EXPECT_EQ(plan->body()[1].relation(), "Probe");
  EXPECT_EQ(plan->body()[2].relation(), "Fan");
}

TEST(OptimizeLiteralOrderTest, NegationsRunAsEarlyFilters) {
  Catalog catalog = Catalog::MustParse("R/1: o\nFan/2: io\nBad/1: o\n");
  CardinalityEstimates est;
  est.Set("Fan", 100000);
  ConjunctiveQuery q =
      MustParseRule("Q(x, y) :- R(x), Fan(x, y), not Bad(x).");
  std::optional<ConjunctiveQuery> plan =
      OptimizeLiteralOrder(q, catalog, est);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->body()[1].negative());
}

TEST(OptimizeLiteralOrderTest, NotOrderableReturnsNullopt) {
  Catalog catalog = Catalog::MustParse("R/1: o\nB/1: i\n");
  EXPECT_FALSE(OptimizeLiteralOrder(MustParseRule("Q(x) :- R(x), B(y)."),
                                    catalog, CardinalityEstimates())
                   .has_value());
  // Unsafe head is also rejected.
  EXPECT_FALSE(OptimizeLiteralOrder(MustParseRule("Q(x, w) :- R(x)."),
                                    catalog, CardinalityEstimates())
                   .has_value());
}

TEST(OptimizeLiteralOrderTest, UnsatisfiableQueryStillOrders) {
  Catalog catalog = Catalog::MustParse("R/1: o\n");
  ConjunctiveQuery q = MustParseRule("Q(x) :- not R(x), R(x).");
  std::optional<ConjunctiveQuery> plan =
      OptimizeLiteralOrder(q, catalog, CardinalityEstimates());
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(IsExecutable(*plan, catalog));
  Database db = Database::MustParseFacts("R(\"a\").\n");
  DatabaseSource source(&db, &catalog);
  ExecutionResult result = Execute(*plan, catalog, &source);
  ASSERT_TRUE(result.ok);
  EXPECT_TRUE(result.tuples.empty());
}

TEST(OptimizeLiteralOrderTest, UnionVersion) {
  Catalog catalog = Catalog::MustParse("R/2: oo\nS/1: o\n");
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- R(x, z), S(z).
    Q(x) :- S(x).
  )");
  std::optional<UnionQuery> plan =
      OptimizeLiteralOrder(q, catalog, CardinalityEstimates());
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->size(), 2u);
  EXPECT_TRUE(IsExecutable(*plan, catalog));
}

TEST(OptimizeLiteralOrderTest, ReducesSourceTrafficOnSelectiveJoins) {
  Catalog catalog = Catalog::MustParse("Big/2: oo io\nSmall/1: o\n");
  Database db;
  for (int i = 0; i < 200; ++i) {
    db.Insert("Big", {Term::Constant("k" + std::to_string(i)),
                      Term::Constant("v" + std::to_string(i))});
  }
  db.Insert("Small", {Term::Constant("k7")});
  db.Insert("Small", {Term::Constant("k9")});
  CardinalityEstimates est = CardinalityEstimates::FromDatabase(db);
  ConjunctiveQuery q = MustParseRule("Q(x, y) :- Big(x, y), Small(x).");

  DatabaseSource naive_source(&db, &catalog);
  ExecutionResult naive = Execute(q, catalog, &naive_source);
  ASSERT_TRUE(naive.ok);

  std::optional<ConjunctiveQuery> plan = OptimizeLiteralOrder(q, catalog, est);
  ASSERT_TRUE(plan.has_value());
  DatabaseSource smart_source(&db, &catalog);
  ExecutionResult smart = Execute(*plan, catalog, &smart_source);
  ASSERT_TRUE(smart.ok);

  EXPECT_EQ(naive.tuples, smart.tuples);
  EXPECT_LT(smart_source.stats().tuples_returned,
            naive_source.stats().tuples_returned);
}

// Satellite regression for the documented fallback: a relation absent
// from the estimates is ordered exactly as if its cardinality were
// kDefaultFallbackCardinality (1000) — bracketed from both sides, so a
// silent change of the constant (or an inconsistency between Get's
// default and PlannerOptions::fallback_cardinality) fails here.
TEST(PlannerFallbackTest, UnknownRelationIsPricedAtTheDocumentedFallback) {
  Catalog catalog = Catalog::MustParse("Unknown/1: o\nKnown/1: o\n");
  ConjunctiveQuery q = MustParseRule("Q(x, y) :- Unknown(x), Known(y).");

  // Known just below the fallback: it is cheaper, so it runs first.
  CardinalityEstimates below;
  below.Set("Known", kDefaultFallbackCardinality - 1.0);
  std::optional<ConjunctiveQuery> plan =
      OptimizeLiteralOrder(q, catalog, below);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->body()[0].relation(), "Known");

  // Known just above the fallback: now the unknown relation is cheaper.
  CardinalityEstimates above;
  above.Set("Known", kDefaultFallbackCardinality + 1.0);
  plan = OptimizeLiteralOrder(q, catalog, above);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->body()[0].relation(), "Unknown");

  // And a caller-chosen fallback moves the bracket with it.
  PlannerOptions options;
  options.fallback_cardinality = 10.0;
  plan = OptimizeLiteralOrder(q, catalog, above, options);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->body()[0].relation(), "Unknown");
  CardinalityEstimates tiny;
  tiny.Set("Known", 5.0);
  plan = OptimizeLiteralOrder(q, catalog, tiny, options);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->body()[0].relation(), "Known");
}

// Property sweep: the optimized order preserves semantics on random
// orderable queries.
class PlannerPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(PlannerPropertyTest, OptimizedPlansPreserveAnswers) {
  std::mt19937 rng(static_cast<unsigned>(GetParam()) * 53 + 2);
  RandomSchemaOptions schema_options;
  schema_options.input_slot_prob = 0.35;
  Catalog catalog = RandomCatalog(&rng, schema_options);
  RandomQueryOptions options;
  options.num_literals = 4;
  options.num_variables = 3;
  options.negation_prob = 0.25;
  options.head_arity = 1;
  RandomInstanceOptions instance_options;
  instance_options.domain_size = 4;
  int checked = 0;
  for (int i = 0; i < 20 && checked < 8; ++i) {
    ConjunctiveQuery q = RandomCq(&rng, catalog, options);
    Database db = RandomDatabase(&rng, catalog, instance_options);
    CardinalityEstimates est = CardinalityEstimates::FromDatabase(db);
    std::optional<ConjunctiveQuery> plan =
        OptimizeLiteralOrder(q, catalog, est);
    if (!plan.has_value()) continue;
    ++checked;
    EXPECT_TRUE(IsExecutable(*plan, catalog)) << plan->ToString();
    DatabaseSource source(&db, &catalog);
    ExecutionResult result = Execute(*plan, catalog, &source);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.tuples, OracleEvaluate(q, db)) << plan->ToString();
  }
  EXPECT_GT(checked, 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PlannerPropertyTest, ::testing::Range(0, 6));

}  // namespace
}  // namespace ucqn
