// AdmissionController: the run / wait / shed triage bounding the
// daemon's in-flight work, and the drain latch behind graceful shutdown.
// Runs under the tsan gate via the `concurrency` label.

#include "server/admission.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace ucqn {
namespace {

TEST(AdmissionTest, UnboundedByDefault) {
  AdmissionController admission;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(admission.Enter(), AdmissionController::Outcome::kAdmitted);
  }
  EXPECT_EQ(admission.counters().in_flight, 100u);
  for (int i = 0; i < 100; ++i) admission.Leave();
  EXPECT_EQ(admission.counters().in_flight, 0u);
  EXPECT_EQ(admission.counters().shed, 0u);
}

TEST(AdmissionTest, ShedsPastTheQueueBound) {
  AdmissionController::Options options;
  options.max_in_flight = 1;
  options.max_queued = 0;
  AdmissionController admission(options);

  EXPECT_EQ(admission.Enter(), AdmissionController::Outcome::kAdmitted);
  // Slot taken, no queue: the second arrival is refused immediately.
  EXPECT_EQ(admission.Enter(), AdmissionController::Outcome::kShed);
  EXPECT_EQ(admission.counters().shed, 1u);
  admission.Leave();
  EXPECT_EQ(admission.Enter(), AdmissionController::Outcome::kAdmitted);
  admission.Leave();
}

TEST(AdmissionTest, QueuedArrivalRunsWhenTheSlotFrees) {
  AdmissionController::Options options;
  options.max_in_flight = 1;
  options.max_queued = 1;
  AdmissionController admission(options);

  ASSERT_EQ(admission.Enter(), AdmissionController::Outcome::kAdmitted);
  std::atomic<bool> admitted{false};
  std::thread waiter([&] {
    EXPECT_EQ(admission.Enter(), AdmissionController::Outcome::kAdmitted);
    admitted.store(true);
    admission.Leave();
  });
  // The waiter parks in the queue; a third arrival overflows it.
  while (admission.counters().waiting == 0) std::this_thread::yield();
  EXPECT_FALSE(admitted.load());
  EXPECT_EQ(admission.Enter(), AdmissionController::Outcome::kShed);
  admission.Leave();  // frees the slot; the waiter admits
  waiter.join();
  EXPECT_TRUE(admitted.load());
  EXPECT_EQ(admission.counters().queued, 1u);
  EXPECT_EQ(admission.counters().shed, 1u);
  EXPECT_EQ(admission.counters().in_flight, 0u);
}

TEST(AdmissionTest, DrainRefusesNewAndQueuedButFinishesInFlight) {
  AdmissionController::Options options;
  options.max_in_flight = 1;
  options.max_queued = 4;
  AdmissionController admission(options);

  ASSERT_EQ(admission.Enter(), AdmissionController::Outcome::kAdmitted);
  std::atomic<int> refused{0};
  std::thread queued([&] {
    if (admission.Enter() == AdmissionController::Outcome::kDraining) {
      refused.fetch_add(1);
    } else {
      admission.Leave();
    }
  });
  while (admission.counters().waiting == 0) std::this_thread::yield();

  admission.BeginDrain();
  EXPECT_TRUE(admission.draining());
  // The queued waiter wakes refused; new arrivals are refused outright.
  queued.join();
  EXPECT_EQ(refused.load(), 1);
  EXPECT_EQ(admission.Enter(), AdmissionController::Outcome::kDraining);
  EXPECT_EQ(admission.counters().drain_refusals, 2u);

  // WaitIdle returns only after the in-flight request leaves.
  std::atomic<bool> idle{false};
  std::thread waiter([&] {
    admission.WaitIdle();
    idle.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  EXPECT_FALSE(idle.load());
  admission.Leave();
  waiter.join();
  EXPECT_TRUE(idle.load());
  EXPECT_EQ(admission.counters().in_flight, 0u);
}

TEST(AdmissionTest, ManyThreadsNeverExceedTheBound) {
  AdmissionController::Options options;
  options.max_in_flight = 3;
  options.max_queued = 64;
  AdmissionController admission(options);

  std::atomic<int> running{0};
  std::atomic<int> peak{0};
  std::atomic<int> completed{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < 16; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20; ++i) {
        if (admission.Enter() != AdmissionController::Outcome::kAdmitted) {
          continue;
        }
        const int now = running.fetch_add(1) + 1;
        int seen = peak.load();
        while (now > seen && !peak.compare_exchange_weak(seen, now)) {
        }
        std::this_thread::yield();
        running.fetch_sub(1);
        admission.Leave();
        completed.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_LE(peak.load(), 3);
  EXPECT_GT(completed.load(), 0);
  const AdmissionController::Counters counters = admission.counters();
  EXPECT_EQ(counters.in_flight, 0u);
  EXPECT_EQ(counters.waiting, 0u);
  EXPECT_EQ(counters.admitted + counters.shed, 16u * 20u);
  EXPECT_EQ(counters.admitted, static_cast<std::uint64_t>(completed.load()));
}

TEST(AdmissionTest, ToJsonIsWellFormed) {
  AdmissionController admission;
  (void)admission.Enter();
  const std::string json = admission.ToJson();
  EXPECT_NE(json.find("\"admitted\": 1"), std::string::npos);
  EXPECT_NE(json.find("\"in_flight\": 1"), std::string::npos);
  admission.Leave();
}

}  // namespace
}  // namespace ucqn
