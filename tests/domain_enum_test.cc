#include "eval/domain_enum.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/oracle.h"
#include "gen/scenarios.h"

namespace ucqn {
namespace {

TEST(EnumerateDomainTest, HarvestsFullScanOutputs) {
  Catalog catalog = Catalog::MustParse("R/2: oo\nB/2: ii\n");
  Database db = Database::MustParseFacts(R"(
    R("a", "b").
    R("c", "d").
    B("x", "y").
  )");
  DatabaseSource source(&db, &catalog);
  DomainEnumResult result = EnumerateDomain(catalog, &source, {});
  // B is all-input and can never be scanned; dom = R's values only.
  EXPECT_EQ(result.domain.size(), 4u);
  EXPECT_FALSE(result.domain.count(Term::Constant("x")));
  EXPECT_FALSE(result.budget_exhausted);
}

TEST(EnumerateDomainTest, SeedsBootstrapInputPatterns) {
  // F^io can only be called with a seed; its outputs then feed further
  // calls (the Duschka-Levy fixpoint).
  Catalog catalog = Catalog::MustParse("F/2: io\n");
  Database db = Database::MustParseFacts(R"(
    F("s", "a").
    F("a", "b").
    F("b", "c").
    F("z", "unreachable").
  )");
  DatabaseSource source(&db, &catalog);
  DomainEnumResult result =
      EnumerateDomain(catalog, &source, {Term::Constant("s")});
  // Reachable from the seed s: s, a, b, c — but not "unreachable".
  EXPECT_EQ(result.domain.size(), 4u);
  EXPECT_TRUE(result.domain.count(Term::Constant("c")));
  EXPECT_FALSE(result.domain.count(Term::Constant("unreachable")));
}

TEST(EnumerateDomainTest, BudgetStopsFixpoint) {
  Catalog catalog = Catalog::MustParse("F/2: io\n");
  Database db = Database::MustParseFacts(R"(
    F("s", "a").
    F("a", "b").
    F("b", "c").
  )");
  DatabaseSource source(&db, &catalog);
  DomainEnumOptions options;
  options.max_calls = 1;
  DomainEnumResult result =
      EnumerateDomain(catalog, &source, {Term::Constant("s")}, options);
  EXPECT_TRUE(result.budget_exhausted);
  EXPECT_LE(result.source_calls, 1u);
}

TEST(EnumerateDomainTest, NoDuplicateCalls) {
  Catalog catalog = Catalog::MustParse("R/1: o\n");
  Database db = Database::MustParseFacts("R(\"a\").\n");
  DatabaseSource source(&db, &catalog);
  DomainEnumResult result = EnumerateDomain(catalog, &source, {});
  // The single no-input call happens exactly once despite multiple rounds.
  EXPECT_EQ(result.source_calls, 1u);
}

TEST(ImproveUnderestimateTest, Example8RecoversAnswer) {
  Scenario s = Example8DomainEnum();
  DatabaseSource source(&s.database, &s.catalog);
  ImprovedUnderestimate improved =
      ImproveUnderestimate(s.query, s.catalog, &source);
  // The plain underestimate only has the T tuple; domain enumeration finds
  // B("a","t2") via dom(y) ∋ t2 and adds the genuine answer (a, t2).
  EXPECT_TRUE(improved.tuples.count(
      {Term::Constant("a"), Term::Constant("t2")}));
  ASSERT_EQ(improved.gained.size(), 1u);
  EXPECT_EQ(*improved.gained.begin(),
            (Tuple{Term::Constant("a"), Term::Constant("t2")}));
  EXPECT_GT(improved.domain.source_calls, 0u);
  EXPECT_GT(improved.evaluation_calls, 0u);
}

TEST(ImproveUnderestimateTest, SoundnessOnAllScenarios) {
  // Improved underestimates must stay within the true answers and contain
  // the plain underestimate.
  for (const Scenario& s : AllScenarios()) {
    DatabaseSource source(&s.database, &s.catalog);
    ImprovedUnderestimate improved =
        ImproveUnderestimate(s.query, s.catalog, &source);
    std::set<Tuple> truth = OracleEvaluate(s.query, s.database);
    for (const Tuple& t : improved.tuples) {
      EXPECT_TRUE(truth.count(t))
          << s.name << ": unsound improved tuple " << TupleToString(t);
    }
  }
}

TEST(ImproveUnderestimateTest, NoGainWhenPlansComplete) {
  Scenario s = Example1Books();  // orderable: plans coincide
  DatabaseSource source(&s.database, &s.catalog);
  ImprovedUnderestimate improved =
      ImproveUnderestimate(s.query, s.catalog, &source);
  EXPECT_TRUE(improved.gained.empty());
  EXPECT_EQ(improved.tuples, OracleEvaluate(s.query, s.database));
}

TEST(ImproveUnderestimateTest, NegativeUnanswerableLiteralHandled) {
  // Both H(w) and not G(x, w) are unanswerable (w can never be bound);
  // the assisted evaluation enumerates w from dom, probes H, and checks
  // the negation after the positives.
  Catalog catalog = Catalog::MustParse("M/1: o\nH/1: i\nG/2: ii\n");
  UnionQuery q = MustParseUnionQuery("Q(x) :- M(x), H(w), not G(x, w).");
  Database db = Database::MustParseFacts(R"(
    M("a").
    M("b").
    H("b").
    G("a", "b").
  )");
  DatabaseSource source(&db, &catalog);
  ImprovedUnderestimate improved = ImproveUnderestimate(q, catalog, &source);
  std::set<Tuple> truth = OracleEvaluate(q, db);
  EXPECT_EQ(truth, (std::set<Tuple>{{Term::Constant("b")}}));
  EXPECT_EQ(improved.tuples, truth);
  EXPECT_EQ(improved.gained, truth);  // plain underestimate was empty
}

}  // namespace
}  // namespace ucqn
