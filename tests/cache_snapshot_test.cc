// Snapshot spill/restore of the process-wide runtime state: cache entries
// (tuples, nulls, remaining TTLs) and the stats catalog, through both the
// JSON layer and the file wrappers the daemon uses for warm restarts.

#include "server/snapshot.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <string>

#include "runtime/clock.h"

namespace ucqn {
namespace {

TEST(CacheSnapshotTest, ExportSkipsExpiredAndKeepsRemainingTtl) {
  SimulatedClock clock;
  SharedCacheStore::Options options;
  options.clock = &clock;
  SharedCacheStore store(options);
  store.SetRelationTtl("R", 1000);

  store.Publish("keep", "R", {{Term::Constant("a"), Term::Null()}});
  store.Publish("forever", "S", {{Term::Constant("b")}});
  clock.Advance(400);
  store.Publish("young", "R", {});

  std::vector<SharedCacheStore::ExportedEntry> entries = store.ExportEntries();
  ASSERT_EQ(entries.size(), 3u);
  std::map<std::string, SharedCacheStore::ExportedEntry> by_key;
  for (const auto& entry : entries) by_key[entry.key] = entry;
  // "keep": published at 0 with TTL 1000, exported at 400 → 600 left.
  EXPECT_EQ(by_key["keep"].ttl_remaining_micros, 600u);
  EXPECT_EQ(by_key["keep"].relation, "R");
  ASSERT_EQ(by_key["keep"].tuples.size(), 1u);
  EXPECT_TRUE(by_key["keep"].tuples[0][1].IsNull());
  EXPECT_EQ(by_key["young"].ttl_remaining_micros, 1000u);
  // 0 = never expires survives as the same sentinel.
  EXPECT_EQ(by_key["forever"].ttl_remaining_micros, 0u);

  // At 1000 "keep" and "young"... "keep" expires exactly now (TTL rule:
  // stale at now == expire_at), "young" still has 400 left.
  clock.Advance(600);
  entries = store.ExportEntries();
  ASSERT_EQ(entries.size(), 2u);
}

TEST(CacheSnapshotTest, RestoreRestartsExpiryAtRestoreTime) {
  SimulatedClock clock;
  SharedCacheStore::Options options;
  options.clock = &clock;
  SharedCacheStore store(options);

  clock.Advance(5000);  // the restoring process is at an arbitrary epoch
  SharedCacheStore::ExportedEntry entry;
  entry.key = "k";
  entry.relation = "R";
  entry.tuples = {{Term::Constant("a")}};
  entry.ttl_remaining_micros = 300;
  store.RestoreEntry(entry);

  clock.Advance(299);
  EXPECT_EQ(store.TryAcquire("k", "R").state,
            SharedCacheStore::LookupState::kHit);
  clock.Advance(1);  // now == restored expiry exactly
  EXPECT_EQ(store.TryAcquire("k", "R").state,
            SharedCacheStore::LookupState::kLeader);
  store.Abandon("k");
}

TEST(CacheSnapshotTest, JsonRoundTripPreservesEntries) {
  SimulatedClock clock;
  SharedCacheStore::Options options;
  options.clock = &clock;
  SharedCacheStore store(options);
  store.Publish("k1", "R", {{Term::Constant("a"), Term::Constant("b")}});
  store.Publish("k2", "R", {});  // negative result
  store.Publish("k3", "S",
                {{Term::Constant("needs \"escaping\""), Term::Null()}});

  const std::string json = CacheSnapshotToJson(store);
  SharedCacheStore restored;
  std::string error;
  ASSERT_TRUE(RestoreCacheSnapshot(json, &restored, &error)) << error;
  EXPECT_EQ(restored.size(), 3u);

  SharedCacheStore::Lookup k1 = restored.TryAcquire("k1", "R");
  ASSERT_EQ(k1.state, SharedCacheStore::LookupState::kHit);
  ASSERT_EQ(k1.tuples.size(), 1u);
  EXPECT_EQ(k1.tuples[0][0], Term::Constant("a"));

  SharedCacheStore::Lookup k2 = restored.TryAcquire("k2", "R");
  ASSERT_EQ(k2.state, SharedCacheStore::LookupState::kHit);
  EXPECT_TRUE(k2.tuples.empty());  // the cached claim "no answers" survives

  SharedCacheStore::Lookup k3 = restored.TryAcquire("k3", "S");
  ASSERT_EQ(k3.state, SharedCacheStore::LookupState::kHit);
  EXPECT_EQ(k3.tuples[0][0], Term::Constant("needs \"escaping\""));
  EXPECT_TRUE(k3.tuples[0][1].IsNull());
}

TEST(CacheSnapshotTest, RestoreRejectsMalformedSnapshots) {
  SharedCacheStore store;
  std::string error;
  EXPECT_FALSE(RestoreCacheSnapshot("not json", &store, &error));
  EXPECT_FALSE(RestoreCacheSnapshot("[]", &store, &error));
  EXPECT_FALSE(RestoreCacheSnapshot("{}", &store, &error));
  EXPECT_FALSE(RestoreCacheSnapshot(
      R"({"entries": [{"relation": "R", "tuples": []}]})", &store, &error));
  EXPECT_FALSE(RestoreCacheSnapshot(
      R"({"entries": [{"key": "k", "relation": "R", "tuples": [[1]]}]})",
      &store, &error));
  EXPECT_EQ(store.size(), 0u);
}

TEST(CacheSnapshotTest, RestoreHonorsTheReceivingStoresBudget) {
  SharedCacheStore big;
  big.Publish("k1", "R", {{Term::Constant("a")}, {Term::Constant("b")}});
  big.Publish("k2", "R", {{Term::Constant("c")}, {Term::Constant("d")}});
  const std::string json = CacheSnapshotToJson(big);

  // A budget that fits exactly one of the two (cost-symmetric) entries.
  const std::size_t one_entry = SharedCacheStore::EntryCost(
      "k1", "R", {{Term::Constant("a")}, {Term::Constant("b")}});
  SharedCacheStore::Options small_options;
  small_options.shards = 1;
  small_options.budget_bytes = one_entry;
  SharedCacheStore small(small_options);
  std::string error;
  ASSERT_TRUE(RestoreCacheSnapshot(json, &small, &error)) << error;
  // Restoring into a smaller store evicts from the cold end, exactly as
  // Publish would.
  EXPECT_EQ(small.size(), 1u);
  EXPECT_LE(small.bytes(), one_entry);
}

TEST(CacheSnapshotTest, FileRoundTripCarriesCacheAndStats) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "ucqn_snapshot_files")
          .string();
  std::filesystem::remove_all(dir);

  SharedCacheStore store;
  store.Publish("k", "R", {{Term::Constant("a")}});
  StatsCatalog stats;
  RelationStats observed;
  observed.calls = 7;
  observed.tuples = 21;
  stats.Record("R", "io", observed);

  std::string error;
  ASSERT_TRUE(SaveSnapshotFiles(dir, store, stats, &error)) << error;

  SharedCacheStore restored_store;
  StatsCatalog restored_stats;
  SnapshotLoadReport report;
  ASSERT_TRUE(LoadSnapshotFiles(dir, &restored_store, &restored_stats, &report,
                                &error))
      << error;
  EXPECT_TRUE(report.cache_loaded);
  EXPECT_TRUE(report.stats_loaded);
  EXPECT_EQ(report.cache_entries, 1u);
  EXPECT_EQ(restored_store.size(), 1u);
  const RelationStats* keyed = restored_stats.Find("R", "io");
  ASSERT_NE(keyed, nullptr);
  EXPECT_EQ(keyed->calls, 7u);
  // The keyed row folded into the pooled entry exactly once.
  const RelationStats* pooled = restored_stats.Find("R");
  ASSERT_NE(pooled, nullptr);
  EXPECT_EQ(pooled->calls, 7u);
  std::filesystem::remove_all(dir);
}

TEST(CacheSnapshotTest, LoadToleratesAFirstBoot) {
  const std::string dir =
      (std::filesystem::path(::testing::TempDir()) / "ucqn_snapshot_empty")
          .string();
  std::filesystem::remove_all(dir);
  SharedCacheStore store;
  StatsCatalog stats;
  SnapshotLoadReport report;
  std::string error;
  EXPECT_TRUE(LoadSnapshotFiles(dir, &store, &stats, &report, &error))
      << error;
  EXPECT_FALSE(report.cache_loaded);
  EXPECT_FALSE(report.stats_loaded);
  EXPECT_EQ(store.size(), 0u);
}

}  // namespace
}  // namespace ucqn
