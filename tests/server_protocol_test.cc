// The ucqnd wire protocol: line-delimited JSON requests/responses — parse
// defaults and rejections, serialization round-trips, and the underlying
// JSON utility it leans on.

#include "server/protocol.h"

#include <gtest/gtest.h>

#include "util/json.h"

namespace ucqn {
namespace {

TEST(JsonTest, ParseDumpRoundTrip) {
  std::string error;
  std::optional<JsonValue> v = ParseJson(
      R"({"a": 1, "b": [true, null, "x"], "c": {"d": -2.5}, "e": ""})",
      &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->Dump(),
            R"({"a": 1, "b": [true, null, "x"], "c": {"d": -2.5}, "e": ""})");
  EXPECT_EQ(v->GetNumber("a"), 1.0);
  const JsonValue* b = v->Find("b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->items().size(), 3u);
  EXPECT_TRUE(b->items()[0].AsBool());
  EXPECT_TRUE(b->items()[1].is_null());
}

TEST(JsonTest, StringEscapes) {
  std::string error;
  std::optional<JsonValue> v =
      ParseJson(R"({"s": "a\"b\\c\n\tAé"})", &error);
  ASSERT_TRUE(v.has_value()) << error;
  EXPECT_EQ(v->GetString("s"), "a\"b\\c\n\tA\xc3\xa9");
  // Dump re-escapes what must be escaped and round-trips.
  std::optional<JsonValue> again = ParseJson(v->Dump(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->GetString("s"), v->GetString("s"));
}

TEST(JsonTest, RejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(ParseJson("", &error).has_value());
  EXPECT_FALSE(ParseJson("{", &error).has_value());
  EXPECT_FALSE(ParseJson("{\"a\": }", &error).has_value());
  EXPECT_FALSE(ParseJson("[1, 2,]", &error).has_value());
  EXPECT_FALSE(ParseJson("{\"a\": 1} trailing", &error).has_value());
  EXPECT_FALSE(ParseJson("'single'", &error).has_value());
}

TEST(ProtocolTest, RequestDefaultsAndFields) {
  std::string error;
  std::optional<ServiceRequest> minimal =
      ParseServiceRequest(R"({"query": "Q(x) :- L(x)."})", &error);
  ASSERT_TRUE(minimal.has_value()) << error;
  EXPECT_EQ(minimal->op, ServiceRequest::Op::kQuery);
  EXPECT_EQ(minimal->tenant, "default");
  EXPECT_EQ(minimal->max_calls, 0u);
  EXPECT_TRUE(minimal->include_answers);

  std::optional<ServiceRequest> full = ParseServiceRequest(
      R"({"op": "query", "id": "q7", "tenant": "alice",)"
      R"( "query": "Q(x) :- L(x).", "max_calls": 42, "answers": false})",
      &error);
  ASSERT_TRUE(full.has_value()) << error;
  EXPECT_EQ(full->id, "q7");
  EXPECT_EQ(full->tenant, "alice");
  EXPECT_EQ(full->max_calls, 42u);
  EXPECT_FALSE(full->include_answers);
}

TEST(ProtocolTest, RequestAdminOps) {
  std::string error;
  std::optional<ServiceRequest> stats =
      ParseServiceRequest(R"({"op": "stats"})", &error);
  ASSERT_TRUE(stats.has_value()) << error;
  EXPECT_EQ(stats->op, ServiceRequest::Op::kStats);

  std::optional<ServiceRequest> inv =
      ParseServiceRequest(R"({"op": "invalidate", "relation": "B"})", &error);
  ASSERT_TRUE(inv.has_value()) << error;
  EXPECT_EQ(inv->op, ServiceRequest::Op::kInvalidate);
  EXPECT_EQ(inv->relation, "B");

  std::optional<ServiceRequest> snap =
      ParseServiceRequest(R"({"op": "snapshot"})", &error);
  ASSERT_TRUE(snap.has_value()) << error;
  EXPECT_EQ(snap->op, ServiceRequest::Op::kSnapshot);
}

TEST(ProtocolTest, RequestRejections) {
  std::string error;
  EXPECT_FALSE(ParseServiceRequest("not json", &error).has_value());
  EXPECT_NE(error.find("malformed"), std::string::npos);
  EXPECT_FALSE(ParseServiceRequest("[1, 2]", &error).has_value());
  EXPECT_FALSE(
      ParseServiceRequest(R"({"op": "frobnicate"})", &error).has_value());
  EXPECT_NE(error.find("unknown op"), std::string::npos);
  // A query op must carry a query.
  EXPECT_FALSE(ParseServiceRequest(R"({"op": "query"})", &error).has_value());
  EXPECT_FALSE(ParseServiceRequest(
                   R"({"query": "Q(x) :- L(x).", "max_calls": -1})", &error)
                   .has_value());
}

TEST(ProtocolTest, ResponseRoundTripsThroughItsJsonLine) {
  ServiceResponse response;
  response.status = ServiceResponse::Status::kOk;
  response.id = "q1";
  response.tenant = "alice";
  response.under = {{Term::Constant("a")}};
  response.over = {{Term::Constant("a")}, {Term::Constant("b"), Term::Null()}};
  response.complete = false;
  response.physical_calls = 3;
  response.cache_hits = 2;
  response.cache_misses = 1;

  const std::string line = response.ToJsonLine();
  EXPECT_EQ(line.find('\n'), std::string::npos);
  std::string error;
  std::optional<ServiceResponse> parsed = ParseServiceResponse(line, &error);
  ASSERT_TRUE(parsed.has_value()) << error << "\nline: " << line;
  EXPECT_EQ(parsed->status, ServiceResponse::Status::kOk);
  EXPECT_EQ(parsed->id, "q1");
  EXPECT_EQ(parsed->tenant, "alice");
  EXPECT_EQ(parsed->under, response.under);
  EXPECT_EQ(parsed->over, response.over);  // incl. the null cell
  EXPECT_FALSE(parsed->complete);
  EXPECT_EQ(parsed->physical_calls, 3u);
  EXPECT_EQ(parsed->cache_hits, 2u);
  EXPECT_EQ(parsed->cache_misses, 1u);
}

TEST(ProtocolTest, ResponseSuppressesAnswersOnRequest) {
  ServiceResponse response;
  response.status = ServiceResponse::Status::kOk;
  response.under = {{Term::Constant("a")}};
  response.over = {{Term::Constant("a")}};
  response.include_answers = false;
  const std::string line = response.ToJsonLine();
  EXPECT_EQ(line.find("\"under\":"), std::string::npos);
  EXPECT_NE(line.find("\"under_count\": 1"), std::string::npos);
  std::string error;
  std::optional<ServiceResponse> parsed = ParseServiceResponse(line, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_FALSE(parsed->include_answers);
  EXPECT_TRUE(parsed->under.empty());
}

TEST(ProtocolTest, ErrorAndRefusalStatuses) {
  for (const auto status :
       {ServiceResponse::Status::kError, ServiceResponse::Status::kShed,
        ServiceResponse::Status::kDraining,
        ServiceResponse::Status::kQuotaRefused}) {
    ServiceResponse response;
    response.status = status;
    response.id = "r";
    response.error = "why";
    const std::string line = response.ToJsonLine();
    // Refusals carry no answer payload.
    EXPECT_EQ(line.find("under"), std::string::npos) << line;
    std::string error;
    std::optional<ServiceResponse> parsed = ParseServiceResponse(line, &error);
    ASSERT_TRUE(parsed.has_value()) << error;
    EXPECT_EQ(parsed->status, status);
    EXPECT_EQ(parsed->error, "why");
  }
}

TEST(ProtocolTest, AdminPayloadIsSplicedVerbatim) {
  ServiceResponse response;
  response.status = ServiceResponse::Status::kOk;
  response.id = "s1";
  response.payload_json = R"({"queries_served": 4})";
  const std::string line = response.ToJsonLine();
  EXPECT_NE(line.find("\"payload\": {\"queries_served\": 4}"),
            std::string::npos)
      << line;
  std::string error;
  std::optional<ServiceResponse> parsed = ParseServiceResponse(line, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->payload_json, R"({"queries_served": 4})");
}

TEST(ProtocolTest, RequestDeltaAndAnswersOps) {
  std::string error;
  std::optional<ServiceRequest> delta = ParseServiceRequest(
      R"({"op": "delta", "relation": "B",)"
      R"( "insert": [["a", "x"], ["b", null]], "delete": [["c", "z"]]})",
      &error);
  ASSERT_TRUE(delta.has_value()) << error;
  EXPECT_EQ(delta->op, ServiceRequest::Op::kDelta);
  EXPECT_EQ(delta->relation, "B");
  ASSERT_EQ(delta->insert_tuples.size(), 2u);
  EXPECT_EQ(delta->insert_tuples[0],
            Tuple({Term::Constant("a"), Term::Constant("x")}));
  EXPECT_EQ(delta->insert_tuples[1],
            Tuple({Term::Constant("b"), Term::Null()}));
  ASSERT_EQ(delta->delete_tuples.size(), 1u);
  EXPECT_EQ(delta->delete_tuples[0],
            Tuple({Term::Constant("c"), Term::Constant("z")}));

  // A standing registration is a query op with the flag set.
  std::optional<ServiceRequest> standing = ParseServiceRequest(
      R"({"op": "query", "id": "s1", "standing": true,)"
      R"( "query": "Q(x) :- L(x)."})",
      &error);
  ASSERT_TRUE(standing.has_value()) << error;
  EXPECT_TRUE(standing->standing);

  std::optional<ServiceRequest> answers = ParseServiceRequest(
      R"({"op": "answers", "id": "s1", "tenant": "alice"})", &error);
  ASSERT_TRUE(answers.has_value()) << error;
  EXPECT_EQ(answers->op, ServiceRequest::Op::kAnswers);
  EXPECT_EQ(answers->id, "s1");
}

TEST(ProtocolTest, RequestDeltaRejections) {
  std::string error;
  EXPECT_FALSE(
      ParseServiceRequest(R"({"op": "delta", "insert": [["a"]]})", &error)
          .has_value());
  EXPECT_NE(error.find("delta op without a \"relation\" field"),
            std::string::npos);

  EXPECT_FALSE(
      ParseServiceRequest(R"({"op": "delta", "relation": "B"})", &error)
          .has_value());
  EXPECT_NE(error.find("delta op without \"insert\" or \"delete\" tuples"),
            std::string::npos);

  // Tuples must be arrays of string/null cells.
  EXPECT_FALSE(ParseServiceRequest(
                   R"({"op": "delta", "relation": "B", "insert": [42]})",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("bad insert set: "), std::string::npos);
  EXPECT_FALSE(ParseServiceRequest(
                   R"({"op": "delta", "relation": "B", "delete": [[true]]})",
                   &error)
                   .has_value());
  EXPECT_NE(error.find("bad delete set: "), std::string::npos);

  EXPECT_FALSE(
      ParseServiceRequest(R"({"op": "answers"})", &error).has_value());
  EXPECT_NE(error.find("answers op without an \"id\" field"),
            std::string::npos);
}

}  // namespace
}  // namespace ucqn
