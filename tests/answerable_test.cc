#include "feasibility/answerable.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace ucqn {
namespace {

Catalog BookCatalog() {
  return Catalog::MustParse(R"(
    relation B/3: ioo oio
    relation C/2: oo
    relation L/1: o
  )");
}

TEST(AnswerableTest, Example1OrderedExecutable) {
  Catalog catalog = BookCatalog();
  ConjunctiveQuery q =
      MustParseRule("Q(i, a, t) :- B(i, a, t), C(i, a), not L(i).");
  AnswerablePart part = Answerable(q, catalog);
  ASSERT_FALSE(part.IsFalse());
  EXPECT_TRUE(part.unanswerable.empty());
  // The algorithm's order: C first (only literal callable with B = ∅),
  // then B and not L become answerable in the second round.
  EXPECT_EQ(part.answerable->body()[0].relation(), "C");
  EXPECT_TRUE(IsExecutable(*part.answerable, catalog));
  EXPECT_EQ(part.bound.size(), 3u);
}

TEST(AnswerableTest, UnsatisfiableQueryIsFalse) {
  Catalog catalog = BookCatalog();
  ConjunctiveQuery q = MustParseRule("Q(i) :- L(i), not L(i).");
  AnswerablePart part = Answerable(q, catalog);
  EXPECT_TRUE(part.IsFalse());
  EXPECT_TRUE(part.unanswerable.empty());
}

TEST(AnswerableTest, UnanswerableLiteralDetected) {
  // Example 9's pattern: B^i can never bind y.
  Catalog catalog = Catalog::MustParse("F/1: o\nB/1: i\n");
  ConjunctiveQuery q = MustParseRule("Q(x) :- F(x), B(x), B(y), F(z).");
  AnswerablePart part = Answerable(q, catalog);
  ASSERT_FALSE(part.IsFalse());
  ASSERT_EQ(part.unanswerable.size(), 1u);
  EXPECT_EQ(part.unanswerable[0].ToString(), "B(y)");
  EXPECT_EQ(part.answerable->body().size(), 3u);
}

TEST(AnswerableTest, NegativeLiteralWaitsForBindings) {
  Catalog catalog = Catalog::MustParse("S/1: o\nR/2: oo\n");
  ConjunctiveQuery q = MustParseRule("Q(x) :- not S(z), R(x, z).");
  AnswerablePart part = Answerable(q, catalog);
  ASSERT_FALSE(part.IsFalse());
  EXPECT_TRUE(part.unanswerable.empty());
  // R must come first: a negated call cannot produce bindings.
  EXPECT_EQ(part.answerable->body()[0].relation(), "R");
  EXPECT_TRUE(part.answerable->body()[1].negative());
}

TEST(AnswerableTest, AnsIsIdempotent) {
  Catalog catalog = Catalog::MustParse("F/1: o\nB/1: i\nG/2: io\n");
  ConjunctiveQuery q =
      MustParseRule("Q(x) :- F(x), G(x, y), B(w), not G(y, x).");
  AnswerablePart once = Answerable(q, catalog);
  ASSERT_FALSE(once.IsFalse());
  AnswerablePart twice = Answerable(*once.answerable, catalog);
  ASSERT_FALSE(twice.IsFalse());
  EXPECT_EQ(*twice.answerable, *once.answerable);
  EXPECT_TRUE(twice.unanswerable.empty());
}

TEST(AnsUnionTest, DropsUnsatisfiableDisjuncts) {
  Catalog catalog = Catalog::MustParse("R/1: o\nS/1: o\n");
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- R(x), not R(x).
    Q(x) :- S(x).
  )");
  UnionQuery ans = Ans(q, catalog);
  ASSERT_EQ(ans.size(), 1u);
  EXPECT_EQ(ans.disjuncts()[0].body()[0].relation(), "S");
}

TEST(IsLiteralAnswerableTest, Definition6AppliesToForeignLiterals) {
  Catalog catalog = Catalog::MustParse("C/2: oo\nB/3: ioo\nX/2: io\n");
  ConjunctiveQuery q = MustParseRule("Q(i, a) :- C(i, a).");
  // X(i, w) is not in Q but is Q-answerable: C binds i, X^io outputs w.
  EXPECT_TRUE(IsLiteralAnswerable(
      MustParseRule("P(i) :- X(i, w).").body()[0], q, catalog));
  // X(w, i) needs w bound: not Q-answerable.
  EXPECT_FALSE(IsLiteralAnswerable(
      MustParseRule("P(i) :- X(w, i).").body()[0], q, catalog));
}

TEST(IsOrderableTest, PaperVerdicts) {
  Catalog catalog = BookCatalog();
  // Example 1: orderable.
  EXPECT_TRUE(IsOrderable(
      MustParseRule("Q(i, a, t) :- B(i, a, t), C(i, a), not L(i)."),
      catalog));
  // Example 3's disjuncts: not orderable (i2, a2 cannot be bound).
  EXPECT_FALSE(IsOrderable(
      MustParseRule("Q(a) :- B(i, a, t), L(i), B(i2, a2, t)."), catalog));
  EXPECT_FALSE(IsOrderable(
      MustParseRule("Q(a) :- B(i, a, t), L(i), not B(i2, a2, t)."),
      catalog));
}

TEST(IsOrderableTest, EdgeCases) {
  Catalog catalog = BookCatalog();
  // Unsatisfiable: orderable (ans = false is executable).
  EXPECT_TRUE(IsOrderable(MustParseRule("Q(i) :- L(i), not L(i)."), catalog));
  // `true`: not orderable.
  EXPECT_FALSE(IsOrderable(MustParseRule("Q()."), catalog));
  // Unsafe head: not orderable even though all body literals answerable.
  EXPECT_FALSE(IsOrderable(MustParseRule("Q(i, x) :- L(i)."), catalog));
}

TEST(IsOrderableTest, UnionOrderableIffAllDisjunctsAre) {
  Catalog catalog = BookCatalog();
  UnionQuery mixed = MustParseUnionQuery(R"(
    Q(i) :- L(i).
    Q(i) :- B(i, a, t).
  )");
  EXPECT_FALSE(IsOrderable(mixed, catalog));
  UnionQuery good = MustParseUnionQuery(R"(
    Q(i) :- L(i).
    Q(i) :- C(i, a).
  )");
  EXPECT_TRUE(IsOrderable(good, catalog));
  EXPECT_TRUE(IsOrderable(UnionQuery(), catalog));
}

TEST(AnswerableTest, QuadraticScalingSmokeCheck) {
  // A long chain is fully answerable and the algorithm terminates quickly.
  Catalog catalog = Catalog::MustParse("E/2: io\nStart/1: o\n");
  std::string text = "Q(v0) :- Start(v0)";
  for (int i = 0; i < 200; ++i) {
    text += ", E(v" + std::to_string(i) + ", v" + std::to_string(i + 1) + ")";
  }
  text += ".";
  AnswerablePart part = Answerable(MustParseRule(text), catalog);
  ASSERT_FALSE(part.IsFalse());
  EXPECT_TRUE(part.unanswerable.empty());
  EXPECT_EQ(part.answerable->body().size(), 201u);
}

}  // namespace
}  // namespace ucqn
