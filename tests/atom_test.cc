#include "ast/atom.h"

#include <gtest/gtest.h>

#include <unordered_set>

namespace ucqn {
namespace {

Atom MakeAtom() {
  return Atom("R", {Term::Variable("x"), Term::Constant("C"),
                    Term::Variable("x"), Term::Variable("y")});
}

TEST(AtomTest, Basics) {
  Atom a = MakeAtom();
  EXPECT_EQ(a.relation(), "R");
  EXPECT_EQ(a.arity(), 4u);
  EXPECT_FALSE(a.IsGround());
}

TEST(AtomTest, VariablesDeduplicatedInOrder) {
  std::vector<Term> vars = MakeAtom().Variables();
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vars[0], Term::Variable("x"));
  EXPECT_EQ(vars[1], Term::Variable("y"));
}

TEST(AtomTest, GroundAtom) {
  Atom a("R", {Term::Constant("A"), Term::Null()});
  EXPECT_TRUE(a.IsGround());
  EXPECT_TRUE(a.Variables().empty());
}

TEST(AtomTest, ZeroAryAtom) {
  Atom a("Flag", {});
  EXPECT_TRUE(a.IsGround());
  EXPECT_EQ(a.ToString(), "Flag()");
}

TEST(AtomTest, ToString) {
  EXPECT_EQ(MakeAtom().ToString(), "R(x, C, x, y)");
}

TEST(AtomTest, EqualityAndHash) {
  std::unordered_set<Atom, AtomHash> atoms;
  atoms.insert(MakeAtom());
  atoms.insert(MakeAtom());
  atoms.insert(Atom("R", {Term::Variable("x")}));
  EXPECT_EQ(atoms.size(), 2u);
  EXPECT_NE(Atom("R", {}), Atom("S", {}));
}

TEST(LiteralTest, SignHandling) {
  Literal pos = Literal::Positive(MakeAtom());
  Literal neg = Literal::Negative(MakeAtom());
  EXPECT_TRUE(pos.positive());
  EXPECT_TRUE(neg.negative());
  EXPECT_NE(pos, neg);
  EXPECT_EQ(pos.Negated(), neg);
  EXPECT_EQ(neg.Negated(), pos);
  EXPECT_EQ(pos.atom(), neg.atom());
}

TEST(LiteralTest, ToString) {
  EXPECT_EQ(Literal::Positive(Atom("R", {Term::Variable("x")})).ToString(),
            "R(x)");
  EXPECT_EQ(Literal::Negative(Atom("R", {Term::Variable("x")})).ToString(),
            "not R(x)");
}

TEST(LiteralTest, HashDistinguishesSign) {
  std::unordered_set<Literal, LiteralHash> literals;
  literals.insert(Literal::Positive(MakeAtom()));
  literals.insert(Literal::Negative(MakeAtom()));
  literals.insert(Literal::Positive(MakeAtom()));
  EXPECT_EQ(literals.size(), 2u);
}

}  // namespace
}  // namespace ucqn
