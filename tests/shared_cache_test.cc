// SharedCacheStore: the process-wide source-call cache — TTL expiry,
// invalidation hooks, exact-byte budgets, the single-flight lookup
// protocol, and its wiring through CachingSource views, SourceStack, and
// the cache-aware adaptive cost model. Concurrency coverage (two
// executions racing on one store) lives in shared_cache_concurrency_test.

#include "runtime/shared_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <limits>

#include "ast/parser.h"
#include "cost/cost_model.h"
#include "eval/answer_star.h"
#include "eval/source.h"
#include "runtime/caching_source.h"
#include "runtime/clock.h"
#include "runtime/source_stack.h"

namespace ucqn {
namespace {

class SharedCacheTest : public ::testing::Test {
 protected:
  SharedCacheTest() {
    catalog_ = Catalog::MustParse("R/2: oo io\nS/1: o\n");
    db_ = Database::MustParseFacts(R"(
      R("a", "b").
      R("c", "d").
      S("b").
    )");
  }

  Catalog catalog_;
  Database db_;
};

TEST_F(SharedCacheTest, SourceCacheKeyIgnoresOutputSlots) {
  const AccessPattern keyed = AccessPattern::MustParse("io");
  const std::string a = SourceCacheKey(
      "R", keyed, {Term::Constant("a"), Term::Constant("b")});
  const std::string b =
      SourceCacheKey("R", keyed, {Term::Constant("a"), std::nullopt});
  EXPECT_EQ(a, b);  // footnote 4: the source ignores output-slot values
  const std::string c =
      SourceCacheKey("R", keyed, {Term::Constant("c"), std::nullopt});
  EXPECT_NE(a, c);
  // Same inputs through a different pattern is a different operation.
  const std::string scan = SourceCacheKey(
      "R", AccessPattern::MustParse("oo"), {std::nullopt, std::nullopt});
  EXPECT_NE(a, scan);
}

TEST_F(SharedCacheTest, PackedKeyMatchesTextualKeyEquivalence) {
  // The packed id key groups calls exactly like the textual key:
  // output-slot values ignored, inputs and pattern word significant —
  // just as fixed-width id sequences instead of rendered strings.
  const AccessPattern keyed = AccessPattern::MustParse("io");
  const std::string a = PackedSourceCacheKey(
      "R", keyed, {Term::Constant("a"), Term::Constant("b")});
  const std::string b =
      PackedSourceCacheKey("R", keyed, {Term::Constant("a"), std::nullopt});
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.size(), 4 * sizeof(std::uint32_t));  // relation, word, 2 slots
  const std::string c =
      PackedSourceCacheKey("R", keyed, {Term::Constant("c"), std::nullopt});
  EXPECT_NE(a, c);
  const std::string scan = PackedSourceCacheKey(
      "R", AccessPattern::MustParse("oo"), {std::nullopt, std::nullopt});
  EXPECT_NE(a, scan);
  // Δ-null at an input slot keys differently from the constant "null".
  const std::string null_key =
      PackedSourceCacheKey("R", keyed, {Term::Null(), std::nullopt});
  const std::string null_const = PackedSourceCacheKey(
      "R", keyed, {Term::Constant("null"), std::nullopt});
  EXPECT_NE(null_key, null_const);
}

TEST_F(SharedCacheTest, PackedKeyUnpacksToItsSignature) {
  const AccessPattern keyed = AccessPattern::MustParse("io");
  const std::string key =
      PackedSourceCacheKey("R", keyed, {Term::Constant("a"), std::nullopt});
  std::string word;
  std::vector<std::optional<Term>> slots;
  ASSERT_TRUE(UnpackSourceCacheKey(key, "R", &word, &slots));
  EXPECT_EQ(word, "io");
  ASSERT_EQ(slots.size(), 2u);
  ASSERT_TRUE(slots[0].has_value());
  EXPECT_EQ(*slots[0], Term::Constant("a"));
  EXPECT_FALSE(slots[1].has_value());
  // Re-packing the unpacked signature reproduces the key bit-for-bit.
  EXPECT_EQ(PackSourceCacheSignature("R", word, slots), key);
  // Opaque keys are recognized as such.
  EXPECT_FALSE(UnpackSourceCacheKey("not-a-packed-key", "R", &word, &slots));
  EXPECT_FALSE(UnpackSourceCacheKey(key, "NotR", &word, &slots));
}

TEST_F(SharedCacheTest, SurvivesAcrossViews) {
  // The cross-query story in miniature: two executions, two views, one
  // store — the second execution never touches the backend.
  DatabaseSource backend(&db_, &catalog_);
  SharedCacheStore store;
  const AccessPattern scan = AccessPattern::MustParse("oo");
  {
    CachingSource first(&backend, store);
    first.FetchOrDie("R", scan, {std::nullopt, std::nullopt});
    EXPECT_EQ(first.cache_stats().misses, 1u);
  }
  EXPECT_EQ(backend.stats().calls, 1u);
  CachingSource second(&backend, store);
  std::vector<Tuple> warm =
      second.FetchOrDie("R", scan, {std::nullopt, std::nullopt});
  EXPECT_EQ(backend.stats().calls, 1u);  // served from the store
  EXPECT_EQ(warm.size(), 2u);
  EXPECT_EQ(second.cache_stats().hits, 1u);
  EXPECT_EQ(second.cache_stats().misses, 0u);
  EXPECT_DOUBLE_EQ(store.RelationHitRate("R"), 0.5);
}

TEST_F(SharedCacheTest, TtlExpiresEntries) {
  DatabaseSource backend(&db_, &catalog_);
  SimulatedClock clock;
  SharedCacheStore::Options options;
  options.default_ttl_micros = 1000;
  options.clock = &clock;
  SharedCacheStore store(options);
  CachingSource cached(&backend, store);
  const AccessPattern scan = AccessPattern::MustParse("o");

  cached.FetchOrDie("S", scan, {std::nullopt});
  clock.Advance(999);
  cached.FetchOrDie("S", scan, {std::nullopt});
  EXPECT_EQ(backend.stats().calls, 1u);  // still fresh at TTL - 1
  clock.Advance(1);
  cached.FetchOrDie("S", scan, {std::nullopt});
  EXPECT_EQ(backend.stats().calls, 2u);  // expired exactly at the TTL
  EXPECT_EQ(store.stats().stale_drops, 1u);
  EXPECT_EQ(cached.cache_stats().stale_drops, 1u);
  // The refetch re-armed the entry with a fresh TTL.
  cached.FetchOrDie("S", scan, {std::nullopt});
  EXPECT_EQ(backend.stats().calls, 2u);
}

TEST_F(SharedCacheTest, PerRelationTtlOverridesDefault) {
  DatabaseSource backend(&db_, &catalog_);
  SimulatedClock clock;
  SharedCacheStore::Options options;
  options.default_ttl_micros = 1000;
  options.clock = &clock;
  SharedCacheStore store(options);
  store.SetRelationTtl("R", 0);  // R's entries never expire
  CachingSource cached(&backend, store);

  cached.FetchOrDie("R", AccessPattern::MustParse("oo"),
                    {std::nullopt, std::nullopt});
  cached.FetchOrDie("S", AccessPattern::MustParse("o"), {std::nullopt});
  clock.Advance(5000);
  cached.FetchOrDie("R", AccessPattern::MustParse("oo"),
                    {std::nullopt, std::nullopt});
  EXPECT_EQ(backend.stats().calls, 2u);  // R still cached
  cached.FetchOrDie("S", AccessPattern::MustParse("o"), {std::nullopt});
  EXPECT_EQ(backend.stats().calls, 3u);  // S expired under the default TTL
}

TEST_F(SharedCacheTest, ExpiryBoundaryIsTheSameOnEveryReadPath) {
  // Satellite regression: `now == expire_at` must read as stale on BOTH
  // lookup paths — TryAcquire and the post-flight index read inside
  // WaitForFlight — with every stale drop landing in the ledger exactly
  // once. A TTL of T serves reads at now+0 .. now+T-1.
  SimulatedClock clock;
  SharedCacheStore::Options options;
  options.default_ttl_micros = 1000;
  options.clock = &clock;
  SharedCacheStore store(options);

  store.Publish("k", "R", {});
  clock.Advance(999);
  SharedCacheStore::Lookup fresh = store.TryAcquire("k", "R");
  EXPECT_EQ(fresh.state, SharedCacheStore::LookupState::kHit);
  EXPECT_FALSE(fresh.stale_drop);
  clock.Advance(1);  // now == expire_at exactly
  SharedCacheStore::Lookup stale = store.TryAcquire("k", "R");
  EXPECT_EQ(stale.state, SharedCacheStore::LookupState::kLeader);
  EXPECT_TRUE(stale.stale_drop);
  EXPECT_EQ(store.stats().stale_drops, 1u);
  store.Abandon("k");

  // Same boundary through WaitForFlight's entry read: a published result
  // that expires before a late waiter gets to it must not be served.
  store.Publish("k2", "R", {});
  clock.Advance(999);
  std::optional<std::vector<Tuple>> served = store.WaitForFlight("k2");
  EXPECT_TRUE(served.has_value());  // TTL - 1: still fresh
  clock.Advance(1);  // now == expire_at exactly
  EXPECT_FALSE(store.WaitForFlight("k2").has_value());
  EXPECT_EQ(store.stats().stale_drops, 2u);
  // The drop really evicted the entry, not just hid it.
  EXPECT_EQ(store.TryAcquire("k2", "R").state,
            SharedCacheStore::LookupState::kLeader);
  store.Abandon("k2");
}

TEST_F(SharedCacheTest, HugeTtlSaturatesInsteadOfWrapping) {
  // now + ttl beyond the uint64 range must clamp to "practically never",
  // not wrap around into the past or collide with the 0 = "never
  // expires" sentinel (which would make the entry immortal by accident —
  // or, wrapped low, instantly stale).
  SimulatedClock clock;
  SharedCacheStore::Options options;
  options.clock = &clock;
  SharedCacheStore store(options);
  store.SetRelationTtl("R", std::numeric_limits<std::uint64_t>::max());

  clock.Advance(5000);  // now != 0 so now + ttl overflows
  store.Publish("k", "R", {});
  clock.Advance(std::numeric_limits<std::uint64_t>::max() / 2);
  SharedCacheStore::Lookup lookup = store.TryAcquire("k", "R");
  EXPECT_EQ(lookup.state, SharedCacheStore::LookupState::kHit);
  EXPECT_FALSE(lookup.stale_drop);
  EXPECT_EQ(store.stats().stale_drops, 0u);
}

TEST_F(SharedCacheTest, ZeroTtlMeansNeverExpiresAtAnyClockValue) {
  // ttl == 0 is the "never expires" sentinel; an entry published at a
  // huge `now` must not be mistaken for one whose expiry wrapped to 0.
  SimulatedClock clock;
  SharedCacheStore::Options options;
  options.clock = &clock;
  SharedCacheStore store(options);  // default TTL 0

  clock.Advance(std::numeric_limits<std::uint64_t>::max() - 10);
  store.Publish("k", "R", {});
  clock.Advance(5);
  EXPECT_EQ(store.TryAcquire("k", "R").state,
            SharedCacheStore::LookupState::kHit);
  std::optional<std::vector<Tuple>> served = store.WaitForFlight("k");
  EXPECT_TRUE(served.has_value());
  EXPECT_EQ(store.stats().stale_drops, 0u);
}

TEST_F(SharedCacheTest, InvalidateRelationDropsOnlyThatRelation) {
  DatabaseSource backend(&db_, &catalog_);
  SharedCacheStore store;
  CachingSource cached(&backend, store);
  cached.FetchOrDie("R", AccessPattern::MustParse("oo"),
                    {std::nullopt, std::nullopt});
  cached.FetchOrDie("S", AccessPattern::MustParse("o"), {std::nullopt});
  EXPECT_EQ(store.size(), 2u);

  store.InvalidateRelation("S");
  EXPECT_EQ(store.size(), 1u);
  EXPECT_EQ(store.stats().invalidated, 1u);
  cached.FetchOrDie("R", AccessPattern::MustParse("oo"),
                    {std::nullopt, std::nullopt});
  EXPECT_EQ(backend.stats().calls, 2u);  // R survived
  cached.FetchOrDie("S", AccessPattern::MustParse("o"), {std::nullopt});
  EXPECT_EQ(backend.stats().calls, 3u);  // S refetched

  store.InvalidateAll();
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.tuples(), 0u);
  cached.FetchOrDie("R", AccessPattern::MustParse("oo"),
                    {std::nullopt, std::nullopt});
  EXPECT_EQ(backend.stats().calls, 4u);
}

TEST_F(SharedCacheTest, ByteBudgetEvictsLru) {
  DatabaseSource backend(&db_, &catalog_);
  const AccessPattern keyed = AccessPattern::MustParse("io");
  const AccessPattern scan = AccessPattern::MustParse("oo");
  // Compute the exact resident cost of each entry the test will insert —
  // the budget is in bytes, so thresholds come from EntryCost rather
  // than platform-dependent literals.
  const Tuple ab = {Term::Constant("a"), Term::Constant("b")};
  const Tuple cd = {Term::Constant("c"), Term::Constant("d")};
  const std::size_t cost_a = SharedCacheStore::EntryCost(
      PackedSourceCacheKey("R", keyed, {Term::Constant("a"), std::nullopt}),
      "R", {ab});
  const std::size_t cost_c = SharedCacheStore::EntryCost(
      PackedSourceCacheKey("R", keyed, {Term::Constant("c"), std::nullopt}),
      "R", {cd});
  const std::size_t cost_scan = SharedCacheStore::EntryCost(
      PackedSourceCacheKey("R", scan, {std::nullopt, std::nullopt}), "R",
      {ab, cd});

  SharedCacheStore::Options options;
  options.shards = 1;  // exact global LRU for a deterministic victim
  // Room for the "c" entry plus the scan, but not the "a" entry too.
  options.budget_bytes = cost_c + cost_scan;
  SharedCacheStore store(options);
  CachingSource cached(&backend, store);

  cached.FetchOrDie("R", keyed, {Term::Constant("a"), std::nullopt});
  cached.FetchOrDie("R", keyed, {Term::Constant("c"), std::nullopt});
  EXPECT_EQ(store.bytes(), cost_a + cost_c);
  // The 2-tuple scan overflows the budget: the LRU entry ("a") goes.
  cached.FetchOrDie("R", scan, {std::nullopt, std::nullopt});
  EXPECT_EQ(store.stats().evictions, 1u);
  EXPECT_EQ(store.bytes(), cost_c + cost_scan);
  cached.FetchOrDie("R", keyed, {Term::Constant("c"), std::nullopt});
  EXPECT_EQ(backend.stats().calls, 3u);  // "c" still cached
  cached.FetchOrDie("R", keyed, {Term::Constant("a"), std::nullopt});
  EXPECT_EQ(backend.stats().calls, 4u);  // "a" was the victim
}

TEST_F(SharedCacheTest, EmptyResultsStillPayTheirFootprint) {
  // The old tuple ledger charged an empty (negative) result one flat
  // tuple — the byte ledger charges its real bookkeeping footprint, so
  // negative entries can no longer ride for (nearly) free.
  SharedCacheStore store;
  store.Publish("k", "R", {});
  EXPECT_GT(store.bytes(), 0u);
  EXPECT_EQ(store.bytes(), SharedCacheStore::EntryCost("k", "R", {}));
  // And a wide tuple costs more than a narrow one under the same key.
  const Tuple narrow = {Term::Constant("x")};
  const Tuple wide = {Term::Constant("a-much-longer-constant-value"),
                      Term::Constant("second"), Term::Constant("third")};
  EXPECT_GT(SharedCacheStore::EntryCost("k", "R", {wide}),
            SharedCacheStore::EntryCost("k", "R", {narrow}));
}

TEST_F(SharedCacheTest, OversizedResultIsKeptForItsOwnExecution) {
  // A result bigger than the whole budget must not evict itself — the
  // execution that fetched it still repeats the call.
  DatabaseSource backend(&db_, &catalog_);
  SharedCacheStore::Options options;
  options.shards = 1;
  options.budget_bytes = 1;
  SharedCacheStore store(options);
  CachingSource cached(&backend, store);
  const AccessPattern scan = AccessPattern::MustParse("oo");
  cached.FetchOrDie("R", scan, {std::nullopt, std::nullopt});  // 2 tuples
  cached.FetchOrDie("R", scan, {std::nullopt, std::nullopt});
  EXPECT_EQ(backend.stats().calls, 1u);
  EXPECT_EQ(store.size(), 1u);
}

TEST_F(SharedCacheTest, AbandonedFlightIsNotCached) {
  SharedCacheStore store;
  SharedCacheStore::Lookup first = store.TryAcquire("k", "R");
  EXPECT_EQ(first.state, SharedCacheStore::LookupState::kLeader);
  store.Abandon("k");
  // The failure was not published: the next lookup leads again.
  SharedCacheStore::Lookup second = store.TryAcquire("k", "R");
  EXPECT_EQ(second.state, SharedCacheStore::LookupState::kLeader);
  store.Publish("k", "R", {});
  SharedCacheStore::Lookup third = store.TryAcquire("k", "R");
  EXPECT_EQ(third.state, SharedCacheStore::LookupState::kHit);
  EXPECT_TRUE(third.tuples.empty());  // empty results are cacheable
}

TEST_F(SharedCacheTest, StackWiringAndAnswerStar) {
  // RuntimeOptions.shared_cache builds the stack's cache as a view over
  // the external store; a second ANSWER* run over the same store is
  // fully warm with byte-identical answers.
  UnionQuery q = MustParseUnionQuery("Q(x) :- R(x, z), not S(z).");
  DatabaseSource backend(&db_, &catalog_);
  SharedCacheStore store;
  RuntimeOptions runtime;
  runtime.shared_cache = &store;
  EXPECT_TRUE(runtime.Enabled());

  SourceStack cold_stack(&backend, runtime);
  ASSERT_NE(cold_stack.cache(), nullptr);
  EXPECT_EQ(cold_stack.cache()->shared(), &store);
  AnswerStarReport cold = AnswerStar(q, catalog_, cold_stack.source());
  const std::uint64_t cold_calls = backend.stats().calls;
  ASSERT_TRUE(cold.ok);
  EXPECT_GT(cold_calls, 0u);

  SourceStack warm_stack(&backend, runtime);
  AnswerStarReport warm = AnswerStar(q, catalog_, warm_stack.source());
  ASSERT_TRUE(warm.ok);
  EXPECT_EQ(warm.under, cold.under);
  EXPECT_EQ(warm.over, cold.over);
  EXPECT_EQ(backend.stats().calls, cold_calls);  // zero new physical calls
  EXPECT_EQ(warm_stack.stats().cache_misses, 0u);
  EXPECT_GT(warm_stack.stats().cache_hits, 0u);
}

TEST_F(SharedCacheTest, MetricsExportsAreWellFormed) {
  DatabaseSource backend(&db_, &catalog_);
  SharedCacheStore store;
  CachingSource cached(&backend, store);
  cached.FetchOrDie("R", AccessPattern::MustParse("oo"),
                    {std::nullopt, std::nullopt});
  cached.FetchOrDie("R", AccessPattern::MustParse("oo"),
                    {std::nullopt, std::nullopt});
  const std::string text = store.ToText();
  EXPECT_NE(text.find("hits=1"), std::string::npos);
  EXPECT_NE(text.find("misses=1"), std::string::npos);
  EXPECT_NE(text.find("R:"), std::string::npos);
  const std::string json = store.ToJson();
  EXPECT_NE(json.find("\"totals\""), std::string::npos);
  EXPECT_NE(json.find("\"relations\""), std::string::npos);
  EXPECT_NE(json.find("\"R\""), std::string::npos);
  EXPECT_EQ(std::count(json.begin(), json.end(), '{'),
            std::count(json.begin(), json.end(), '}'));
}

TEST_F(SharedCacheTest, AdaptiveModelPricesCachedHotRelationsNearZero) {
  // Feed the model a store where R is cached-hot; the latency term of R's
  // candidates scales by the miss rate, so its patterns price near zero.
  SharedCacheStore store;
  store.Publish(SourceCacheKey("R", AccessPattern::MustParse("oo"),
                               {std::nullopt, std::nullopt}),
                "R", {});
  // 1 miss, then 9 hits: 90% hit rate.
  (void)store.TryAcquire("probe", "R");
  store.Abandon("probe");
  for (int i = 0; i < 9; ++i) {
    (void)store.TryAcquire(SourceCacheKey("R", AccessPattern::MustParse("oo"),
                                          {std::nullopt, std::nullopt}),
                           "R");
  }

  StatsCatalog stats;
  RelationStats observed;
  observed.calls = 10;
  observed.tuples = 10;
  observed.p50_latency_micros = 10000.0;
  stats.Record("R", observed);

  Literal lit = MustParseRule("Q(x) :- R(x, y).").body()[0];
  const AccessPattern scan = AccessPattern::MustParse("oo");
  BoundVariables bound;
  PlanContext context;

  AdaptiveCostModel uncached(&stats);
  AdaptiveCostOptions cache_aware_options;
  cache_aware_options.shared_cache = &store;
  AdaptiveCostModel cache_aware(&stats, {}, cache_aware_options);

  EXPECT_DOUBLE_EQ(uncached.MissRate("R"), 1.0);
  EXPECT_DOUBLE_EQ(cache_aware.MissRate("R"), 0.1);
  const double full = uncached.PatternCost(lit, scan, bound, context);
  const double warm = cache_aware.PatternCost(lit, scan, bound, context);
  EXPECT_LT(warm, full);
  // The latency term shrank 10x; the tuple term is unchanged.
  EXPECT_NEAR(full - warm, 9000.0, 1e-6);
}

TEST_F(SharedCacheTest, NegativeTtlSplitsEmptyFromPositiveResults) {
  // With a negative TTL configured, an empty result ages on its own
  // (shorter) clock while positive results keep the relation/default TTL.
  DatabaseSource backend(&db_, &catalog_);
  SimulatedClock clock;
  SharedCacheStore::Options options;
  options.default_ttl_micros = 10000;
  options.negative_ttl_micros = 1000;
  options.clock = &clock;
  SharedCacheStore store(options);
  CachingSource cached(&backend, store);
  const AccessPattern keyed = AccessPattern::MustParse("io");

  // R("a", _) has answers; R("zzz", _) is empty — a negative claim.
  cached.FetchOrDie("R", keyed, {Term::Constant("a"), std::nullopt});
  cached.FetchOrDie("R", keyed, {Term::Constant("zzz"), std::nullopt});
  EXPECT_EQ(backend.stats().calls, 2u);

  clock.Advance(1000);  // past the negative TTL, inside the default
  cached.FetchOrDie("R", keyed, {Term::Constant("a"), std::nullopt});
  EXPECT_EQ(backend.stats().calls, 2u);  // positive entry still fresh
  cached.FetchOrDie("R", keyed, {Term::Constant("zzz"), std::nullopt});
  EXPECT_EQ(backend.stats().calls, 3u);  // negative entry re-fetched
  EXPECT_EQ(store.stats().stale_drops, 1u);
}

TEST_F(SharedCacheTest, NegativeTtlExpiryBoundaryMatchesTheTtlRule) {
  // Same `now == expire_at` boundary as every other TTL: a negative TTL
  // of T serves the empty result at now+0 .. now+T-1 and drops it at
  // now+T exactly.
  SimulatedClock clock;
  SharedCacheStore::Options options;
  options.default_ttl_micros = 10000;
  options.negative_ttl_micros = 1000;
  options.clock = &clock;
  SharedCacheStore store(options);

  store.Publish("neg", "R", {});
  clock.Advance(999);
  SharedCacheStore::Lookup fresh = store.TryAcquire("neg", "R");
  EXPECT_EQ(fresh.state, SharedCacheStore::LookupState::kHit);
  EXPECT_FALSE(fresh.stale_drop);
  clock.Advance(1);  // now == expire_at exactly
  SharedCacheStore::Lookup stale = store.TryAcquire("neg", "R");
  EXPECT_EQ(stale.state, SharedCacheStore::LookupState::kLeader);
  EXPECT_TRUE(stale.stale_drop);
  EXPECT_EQ(store.stats().stale_drops, 1u);
  store.Abandon("neg");
}

TEST_F(SharedCacheTest, NegativeTtlBeatsPerRelationOverride) {
  // SetRelationTtl tunes positive data; the negative split still wins for
  // empty results of the same relation — and SetNegativeTtl(0) disables
  // the split again, returning empty results to the relation TTL.
  SimulatedClock clock;
  SharedCacheStore::Options options;
  options.negative_ttl_micros = 100;
  options.clock = &clock;
  SharedCacheStore store(options);
  store.SetRelationTtl("R", 10000);

  store.Publish("neg", "R", {});
  store.Publish("pos", "R", {{Term::Constant("a")}});
  clock.Advance(100);
  EXPECT_EQ(store.TryAcquire("neg", "R").state,
            SharedCacheStore::LookupState::kLeader);  // negative: expired
  store.Abandon("neg");
  EXPECT_EQ(store.TryAcquire("pos", "R").state,
            SharedCacheStore::LookupState::kHit);  // positive: relation TTL

  store.SetNegativeTtl(0);
  store.Publish("neg2", "R", {});
  clock.Advance(5000);  // far past the old negative TTL
  EXPECT_EQ(store.TryAcquire("neg2", "R").state,
            SharedCacheStore::LookupState::kHit);
}

TEST_F(SharedCacheTest, RestoreReArmsNegativeEntriesAgainstTheCurrentTtl) {
  // Snapshot restore of an empty (negative) result must re-arm against
  // the *restoring* store's negative TTL, not the per-relation TTL the
  // exporter ran with: a restart that shortens --negative-ttl would
  // otherwise resurrect long-lived "no answer" claims.
  SimulatedClock clock;
  SharedCacheStore::Options options;
  options.default_ttl_micros = 50000;
  options.negative_ttl_micros = 1000;
  options.clock = &clock;
  SharedCacheStore store(options);

  // Exported by a run with a *longer* negative TTL: 40000 left.
  SharedCacheStore::ExportedEntry negative;
  negative.key = "neg";
  negative.relation = "R";
  negative.ttl_remaining_micros = 40000;
  store.RestoreEntry(negative);

  // Exported by a run with *no* negative TTL at all: the 0 sentinel
  // ("never expires") must not survive restore for an empty result.
  SharedCacheStore::ExportedEntry immortal;
  immortal.key = "neg-immortal";
  immortal.relation = "R";
  immortal.ttl_remaining_micros = 0;
  store.RestoreEntry(immortal);

  // A positive entry with the same remainder keeps it untouched.
  SharedCacheStore::ExportedEntry positive;
  positive.key = "pos";
  positive.relation = "R";
  positive.tuples = {{Term::Constant("a")}};
  positive.ttl_remaining_micros = 40000;
  store.RestoreEntry(positive);

  clock.Advance(1000);  // past the current negative TTL
  EXPECT_EQ(store.TryAcquire("neg", "R").state,
            SharedCacheStore::LookupState::kLeader);
  store.Abandon("neg");
  EXPECT_EQ(store.TryAcquire("neg-immortal", "R").state,
            SharedCacheStore::LookupState::kLeader);
  store.Abandon("neg-immortal");
  EXPECT_EQ(store.TryAcquire("pos", "R").state,
            SharedCacheStore::LookupState::kHit);
}

TEST_F(SharedCacheTest, RestoreKeepsTheShorterNegativeRemainder) {
  // min rule: when the exported remainder is already shorter than the
  // current negative TTL (the TTL grew between runs), the remainder
  // stands — restore never *extends* a negative claim's life.
  SimulatedClock clock;
  SharedCacheStore::Options options;
  options.negative_ttl_micros = 10000;
  options.clock = &clock;
  SharedCacheStore store(options);

  SharedCacheStore::ExportedEntry negative;
  negative.key = "neg";
  negative.relation = "R";
  negative.ttl_remaining_micros = 500;
  store.RestoreEntry(negative);

  clock.Advance(499);
  EXPECT_EQ(store.TryAcquire("neg", "R").state,
            SharedCacheStore::LookupState::kHit);
  clock.Advance(1);  // the exported remainder, far inside the new TTL
  EXPECT_EQ(store.TryAcquire("neg", "R").state,
            SharedCacheStore::LookupState::kLeader);
  store.Abandon("neg");
}

TEST_F(SharedCacheTest, RestoreWithNegativeTtlDisabledKeepsExportedRemainder) {
  // The 0 = "no split" sentinel: with no negative TTL configured here,
  // the exported remainder stands — including 0 = never expires.
  SimulatedClock clock;
  SharedCacheStore::Options options;
  options.clock = &clock;
  SharedCacheStore store(options);

  SharedCacheStore::ExportedEntry negative;
  negative.key = "neg";
  negative.relation = "R";
  negative.ttl_remaining_micros = 0;
  store.RestoreEntry(negative);

  clock.Advance(1u << 30);
  EXPECT_EQ(store.TryAcquire("neg", "R").state,
            SharedCacheStore::LookupState::kHit);
}

}  // namespace
}  // namespace ucqn
