#include "schema/catalog.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace ucqn {
namespace {

TEST(CatalogTest, AddAndFind) {
  Catalog catalog;
  catalog.AddRelation("B", 3);
  catalog.AddPattern("B", "ioo");
  catalog.AddPattern("B", "oio");
  catalog.AddPattern("B", "ioo");  // duplicate ignored
  const RelationSchema* b = catalog.Find("B");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->arity(), 3u);
  EXPECT_EQ(b->patterns().size(), 2u);
  EXPECT_TRUE(b->HasPattern(AccessPattern::MustParse("ioo")));
  EXPECT_FALSE(b->HasPattern(AccessPattern::MustParse("ooo")));
  EXPECT_EQ(catalog.Find("X"), nullptr);
  EXPECT_TRUE(catalog.Contains("B"));
}

TEST(CatalogTest, AddPatternDeclaresRelation) {
  Catalog catalog;
  catalog.AddPattern("L", "o");
  ASSERT_TRUE(catalog.Contains("L"));
  EXPECT_EQ(catalog.Find("L")->arity(), 1u);
}

TEST(CatalogTest, FullScanDetection) {
  Catalog catalog;
  catalog.AddPattern("A", "io");
  catalog.AddPattern("B", "oo");
  EXPECT_FALSE(catalog.Find("A")->HasFullScanPattern());
  EXPECT_TRUE(catalog.Find("B")->HasFullScanPattern());
}

TEST(CatalogTest, ParseTextFormat) {
  Catalog catalog = Catalog::MustParse(R"(
    # book sources
    relation B/3: ioo oio
    C/2: oo
    relation L/1: o
  )");
  EXPECT_EQ(catalog.size(), 3u);
  EXPECT_EQ(catalog.Find("B")->patterns().size(), 2u);
  EXPECT_EQ(catalog.Find("C")->arity(), 2u);
}

TEST(CatalogTest, ParseErrors) {
  std::string error;
  EXPECT_FALSE(Catalog::Parse("B: ioo", &error).has_value());
  EXPECT_FALSE(Catalog::Parse("B/x: ioo", &error).has_value());
  EXPECT_FALSE(Catalog::Parse("B/3 ioo", &error).has_value());
  EXPECT_FALSE(Catalog::Parse("B/3: iox", &error).has_value());
  EXPECT_FALSE(Catalog::Parse("B/3: io", &error).has_value());  // arity
}

TEST(CatalogTest, ParseRelationWithNoPatterns) {
  Catalog catalog = Catalog::MustParse("B/2:\n");
  ASSERT_TRUE(catalog.Contains("B"));
  EXPECT_TRUE(catalog.Find("B")->patterns().empty());
}

TEST(CatalogTest, CoversQuery) {
  Catalog catalog = Catalog::MustParse("R/2: oo\nS/1: o\n");
  std::string error;
  EXPECT_TRUE(
      catalog.CoversQuery(MustParseRule("Q(x) :- R(x, y), not S(y)."),
                          &error));
  EXPECT_FALSE(catalog.CoversQuery(MustParseRule("Q(x) :- T(x)."), &error));
  EXPECT_NE(error.find("undeclared"), std::string::npos);
  EXPECT_FALSE(catalog.CoversQuery(MustParseRule("Q(x) :- R(x)."), &error));
  EXPECT_NE(error.find("arity"), std::string::npos);
}

TEST(CatalogTest, WithAllOutputPatterns) {
  Catalog catalog = Catalog::MustParse("B/2: ii\n");
  Catalog augmented = catalog.WithAllOutputPatterns(/*replace=*/false);
  EXPECT_EQ(augmented.Find("B")->patterns().size(), 2u);
  EXPECT_TRUE(augmented.Find("B")->HasFullScanPattern());
  Catalog replaced = catalog.WithAllOutputPatterns(/*replace=*/true);
  EXPECT_EQ(replaced.Find("B")->patterns().size(), 1u);
  EXPECT_TRUE(replaced.Find("B")->HasFullScanPattern());
}

TEST(CatalogTest, CardinalityAnnotations) {
  Catalog catalog = Catalog::MustParse(R"(
    Big/2: io oo @50000
    Small/1: o @12
    Unknown/1: o
  )");
  ASSERT_TRUE(catalog.Find("Big")->cardinality().has_value());
  EXPECT_DOUBLE_EQ(*catalog.Find("Big")->cardinality(), 50000.0);
  EXPECT_DOUBLE_EQ(*catalog.Find("Small")->cardinality(), 12.0);
  EXPECT_FALSE(catalog.Find("Unknown")->cardinality().has_value());
  // Round-trips through the text form.
  Catalog again = Catalog::MustParse(catalog.ToString());
  EXPECT_EQ(again.ToString(), catalog.ToString());
  // Bad annotations are rejected.
  std::string error;
  EXPECT_FALSE(Catalog::Parse("R/1: o @abc", &error).has_value());
  EXPECT_FALSE(Catalog::Parse("R/1: o @", &error).has_value());
}

TEST(CatalogTest, NormalizedDropsDominatedPatterns) {
  Catalog catalog = Catalog::MustParse("B/3: ioo oio ooo iio\nL/1: i o\n");
  Catalog normalized = catalog.Normalized();
  // ooo dominates everything for B; o dominates i for L.
  ASSERT_EQ(normalized.Find("B")->patterns().size(), 1u);
  EXPECT_EQ(normalized.Find("B")->patterns()[0].word(), "ooo");
  ASSERT_EQ(normalized.Find("L")->patterns().size(), 1u);
  EXPECT_EQ(normalized.Find("L")->patterns()[0].word(), "o");
}

TEST(CatalogTest, NormalizedKeepsIncomparablePatterns) {
  Catalog catalog = Catalog::MustParse("B/3: ioo oio\n");
  Catalog normalized = catalog.Normalized();
  EXPECT_EQ(normalized.Find("B")->patterns().size(), 2u);
}

TEST(CatalogTest, NormalizedPreservesScanCapability) {
  Catalog catalog = Catalog::MustParse("B/2: io oo ii\nS/1: o i\n");
  Catalog normalized = catalog.Normalized();
  EXPECT_TRUE(normalized.Find("B")->HasFullScanPattern());
  EXPECT_TRUE(normalized.Find("S")->HasFullScanPattern());
  EXPECT_EQ(normalized.Find("B")->patterns().size(), 1u);
}

TEST(CatalogTest, ToStringRoundTrip) {
  Catalog catalog = Catalog::MustParse("B/3: ioo oio\nL/1: o\n");
  Catalog reparsed = Catalog::MustParse(catalog.ToString());
  EXPECT_EQ(reparsed.ToString(), catalog.ToString());
}

}  // namespace
}  // namespace ucqn
