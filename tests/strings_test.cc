#include "util/strings.h"

#include <gtest/gtest.h>

namespace ucqn {
namespace {

TEST(StrJoinTest, Empty) { EXPECT_EQ(StrJoin({}, ", "), ""); }

TEST(StrJoinTest, Single) { EXPECT_EQ(StrJoin({"a"}, ", "), "a"); }

TEST(StrJoinTest, Multiple) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
}

TEST(StrJoinTest, EmptySeparator) {
  EXPECT_EQ(StrJoin({"a", "b"}, ""), "ab");
}

TEST(StripWhitespaceTest, AllCases) {
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace("   "), "");
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_EQ(StripWhitespace("x"), "x");
  EXPECT_EQ(StripWhitespace("\t a b \n"), "a b");
}

TEST(SplitAndTrimTest, Basic) {
  std::vector<std::string> parts = SplitAndTrim("a, b ,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
  EXPECT_EQ(parts[2], "c");
}

TEST(SplitAndTrimTest, DropsEmptyPieces) {
  std::vector<std::string> parts = SplitAndTrim(",a,,b,", ',');
  ASSERT_EQ(parts.size(), 2u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[1], "b");
}

TEST(SplitAndTrimTest, EmptyInput) {
  EXPECT_TRUE(SplitAndTrim("", ',').empty());
  EXPECT_TRUE(SplitAndTrim("   ", ',').empty());
}

TEST(ConsistsOfTest, Basic) {
  EXPECT_TRUE(ConsistsOf("ioio", "io"));
  EXPECT_TRUE(ConsistsOf("", "io"));
  EXPECT_FALSE(ConsistsOf("iox", "io"));
}

}  // namespace
}  // namespace ucqn
