// Inter-literal pipelining (RuntimeOptions::pipeline_depth): answers and
// witness order must be byte-identical at every depth across every
// runtime layer combination, overlapping waves must shrink simulated
// wall-clock on a latency-bound chain, and the error/budget edges of the
// pipelined loop must fail as cleanly as the one-wave-at-a-time path.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ast/parser.h"
#include "eval/executor.h"
#include "runtime/fault_injection.h"
#include "runtime/source_stack.h"

namespace ucqn {
namespace {

class PipelineExecutorTest : public ::testing::Test {
 protected:
  PipelineExecutorTest() {
    catalog_ = Catalog::MustParse("R/2: oo io\nS/1: o\nT/2: oo io\n");
    db_ = Database::MustParseFacts(R"(
      R("a", "b").
      R("c", "d").
      R("e", "b").
      R("g", "h").
      T("b", "t1").
      T("d", "t2").
      T("h", "t3").
      S("b").
    )");
  }

  // The reference semantics: per-binding loop, no runtime layers.
  std::set<Tuple> ReferenceAnswers() {
    DatabaseSource backend(&db_, &catalog_);
    ExecutionOptions options;
    options.batch = false;
    ExecutionResult result = Execute(query_, catalog_, &backend, options);
    EXPECT_TRUE(result.ok) << result.error;
    return result.tuples;
  }

  // The witness sequence as an ordered string list — the pipelined loop
  // promises not just the same answer *set* but the same derivation
  // *order* as depth 1 (its frontiers are FIFO along a single chain).
  std::vector<std::string> BindingOrder(const ExecutionOptions& options) {
    DatabaseSource backend(&db_, &catalog_);
    BindingsResult result =
        ExecuteForBindings(query_, catalog_, &backend, options);
    EXPECT_TRUE(result.ok) << result.error;
    std::vector<std::string> order;
    order.reserve(result.bindings.size());
    for (const Substitution& binding : result.bindings) {
      order.push_back(binding.ToString());
    }
    return order;
  }

  Catalog catalog_;
  Database db_;
  ConjunctiveQuery query_ =
      MustParseRule("Q(x, w) :- R(x, z), T(z, w), not S(z).");
};

TEST_F(PipelineExecutorTest, AnswersMatchReferenceAtEveryDepthAndCombo) {
  const std::set<Tuple> expected = ReferenceAnswers();
  ASSERT_EQ(expected.size(), 2u);  // Q("c","t2"), Q("g","t3")

  // combo bits: 1 = cache, 2 = retry (+ injected failures), 4 = metering.
  for (std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
    for (std::size_t pipeline_depth :
         {std::size_t{1}, std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
      for (int combo = 0; combo < 8; ++combo) {
        const bool with_cache = (combo & 1) != 0;
        const bool with_retry = (combo & 2) != 0;
        SCOPED_TRACE("parallelism=" + std::to_string(parallelism) +
                     " depth=" + std::to_string(pipeline_depth) +
                     " combo=" + std::to_string(combo));

        DatabaseSource backend(&db_, &catalog_);
        FaultPlan faults;
        faults.latency_micros = 100;
        if (with_retry) faults.fail_first_per_key = 1;
        FaultInjectingSource flaky(&backend, faults);

        ExecutionOptions options;
        options.runtime.cache = with_cache;
        options.runtime.retry = with_retry;
        options.runtime.retry_policy.max_attempts = 3;
        options.runtime.metering = (combo & 4) != 0;
        options.runtime.parallelism = parallelism;
        options.runtime.pipeline_depth = pipeline_depth;
        ExecutionResult result = Execute(query_, catalog_, &flaky, options);
        ASSERT_TRUE(result.ok) << result.error;
        EXPECT_EQ(result.tuples, expected);
      }
    }
  }
}

TEST_F(PipelineExecutorTest, WitnessOrderIsIdenticalAtEveryDepth) {
  ExecutionOptions options;
  options.runtime.metering = true;  // force a stack so depth > 1 engages
  options.runtime.pipeline_depth = 1;
  const std::vector<std::string> reference = BindingOrder(options);
  ASSERT_FALSE(reference.empty());
  for (std::size_t pipeline_depth :
       {std::size_t{2}, std::size_t{3}, std::size_t{4}}) {
    for (std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
      SCOPED_TRACE("depth=" + std::to_string(pipeline_depth) +
                   " parallelism=" + std::to_string(parallelism));
      options.runtime.pipeline_depth = pipeline_depth;
      options.runtime.parallelism = parallelism;
      EXPECT_EQ(BindingOrder(options), reference);
    }
  }
}

TEST_F(PipelineExecutorTest, CacheLedgerMakesCallCountsDepthInvariant) {
  // Per-chunk dedup is narrower than per-wave dedup, so raw physical
  // calls may differ across depths — but with the cache on, repeats are
  // hits and the *physical* call count must match depth 1 exactly.
  std::uint64_t calls_at_depth_1 = 0;
  for (std::size_t pipeline_depth :
       {std::size_t{1}, std::size_t{2}, std::size_t{4}}) {
    DatabaseSource backend(&db_, &catalog_);
    ExecutionOptions options;
    options.runtime.cache = true;
    options.runtime.metering = true;
    options.runtime.pipeline_depth = pipeline_depth;
    ExecutionResult result = Execute(query_, catalog_, &backend, options);
    ASSERT_TRUE(result.ok) << result.error;
    if (pipeline_depth == 1) {
      calls_at_depth_1 = result.runtime.source_calls;
      EXPECT_EQ(calls_at_depth_1, 5u);  // 1 R scan + 3 T probes + 1 S scan
    } else {
      EXPECT_EQ(result.runtime.source_calls, calls_at_depth_1)
          << "depth=" << pipeline_depth;
    }
  }
}

TEST_F(PipelineExecutorTest, CountersReportRoundsAndOverlaps) {
  DatabaseSource backend(&db_, &catalog_);
  ExecutionOptions options;
  options.runtime.metering = true;

  options.runtime.pipeline_depth = 1;
  ExecutionResult sequential = Execute(query_, catalog_, &backend, options);
  ASSERT_TRUE(sequential.ok) << sequential.error;
  EXPECT_EQ(sequential.runtime.pipeline_rounds, 0u);
  EXPECT_EQ(sequential.runtime.pipeline_overlaps, 0u);

  options.runtime.pipeline_depth = 3;
  ExecutionResult pipelined = Execute(query_, catalog_, &backend, options);
  ASSERT_TRUE(pipelined.ok) << pipelined.error;
  EXPECT_GT(pipelined.runtime.pipeline_rounds, 0u);
  // chunk = parallelism = 1, and R alone yields 4 bindings: several
  // rounds must have had two stages' waves genuinely in flight.
  EXPECT_GT(pipelined.runtime.pipeline_overlaps, 0u);
  EXPECT_LE(pipelined.runtime.pipeline_overlaps,
            pipelined.runtime.pipeline_rounds);
}

TEST_F(PipelineExecutorTest, OverlappedWavesShrinkSimulatedWallClock) {
  // A latency-bound 3-literal chain: every call sleeps 500us on a shared
  // SimulatedClock. At depth 1 the stages serialize; at depth >= 2 the
  // overlap bracket charges concurrent lanes max-over-lanes, so virtual
  // wall-clock must drop by at least a third (the bench's stronger
  // >= 1.5x claim is measured in bench_runtime's BM_PipelinedChain).
  const Catalog chain_catalog =
      Catalog::MustParse("A/2: oo\nB/2: io\nC/2: io\n");
  const Database chain_db = Database::MustParseFacts(R"(
    A("a1", "b1").
    A("a2", "b2").
    A("a3", "b3").
    A("a4", "b4").
    B("b1", "c1").
    B("b2", "c2").
    B("b3", "c3").
    B("b4", "c4").
    C("c1", "d1").
    C("c2", "d2").
    C("c3", "d3").
    C("c4", "d4").
  )");
  const ConjunctiveQuery chain =
      MustParseRule("Q(x, v) :- A(x, y), B(y, z), C(z, v).");

  std::set<Tuple> answers_at_depth_1;
  std::uint64_t elapsed_at_depth_1 = 0;
  for (std::size_t pipeline_depth :
       {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
    SCOPED_TRACE("depth=" + std::to_string(pipeline_depth));
    SimulatedClock clock;
    DatabaseSource backend(&chain_db, &chain_catalog);
    FaultPlan faults;
    faults.latency_micros = 500;
    FaultInjectingSource slow(&backend, faults, &clock);

    ExecutionOptions options;
    options.runtime.metering = true;
    options.runtime.pipeline_depth = pipeline_depth;
    options.runtime.clock = &clock;
    ExecutionResult result = Execute(chain, chain_catalog, &slow, options);
    ASSERT_TRUE(result.ok) << result.error;
    ASSERT_EQ(result.tuples.size(), 4u);

    const std::uint64_t elapsed = clock.NowMicros();
    if (pipeline_depth == 1) {
      answers_at_depth_1 = result.tuples;
      elapsed_at_depth_1 = elapsed;
      // 9 sequential calls (1 A scan + 4 B probes + 4 C probes) at 500us.
      EXPECT_EQ(elapsed, 9u * 500u);
    } else {
      EXPECT_EQ(result.tuples, answers_at_depth_1);
      EXPECT_GT(result.runtime.pipeline_overlaps, 0u);
      // At least a third off: overlapped lanes cost max, not sum.
      EXPECT_LE(elapsed * 3, elapsed_at_depth_1 * 2)
          << elapsed << "us vs " << elapsed_at_depth_1 << "us sequential";
    }
  }
}

TEST_F(PipelineExecutorTest, BudgetFailureSurfacesThroughThePipeline) {
  for (std::size_t pipeline_depth : {std::size_t{2}, std::size_t{4}}) {
    DatabaseSource backend(&db_, &catalog_);
    ExecutionOptions options;
    options.runtime.budget.max_calls = 1;  // not enough for the join
    options.runtime.metering = true;
    options.runtime.pipeline_depth = pipeline_depth;
    ExecutionResult result = Execute(query_, catalog_, &backend, options);
    EXPECT_FALSE(result.ok) << "depth=" << pipeline_depth;
    EXPECT_TRUE(result.tuples.empty());
    EXPECT_NE(result.error.find("budget"), std::string::npos);
    EXPECT_LE(result.runtime.source_calls, 1u);
  }
}

TEST_F(PipelineExecutorTest, UnusablePatternFailsLazilyLikeDepthOne) {
  // B requires its first slot bound, and nothing binds it: the pipelined
  // loop must report the same no-usable-pattern failure as depth 1 — and
  // only when bindings actually reach the stage.
  const Catalog gap_catalog = Catalog::MustParse("A/2: oo\nB/2: io\n");
  const Database gap_db = Database::MustParseFacts(R"(A("x", "y").)");
  const ConjunctiveQuery gap =
      MustParseRule("Q(x, w) :- A(x, y), B(z, w).");  // z is never bound
  DatabaseSource backend(&gap_db, &gap_catalog);
  ExecutionOptions options;
  options.runtime.metering = true;
  options.runtime.pipeline_depth = 2;
  ExecutionResult result = Execute(gap, gap_catalog, &backend, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("no usable access pattern"), std::string::npos);
}

TEST_F(PipelineExecutorTest, MaxBindingsBoundsTheWholePipe) {
  // R alone yields 4 live bindings; a cap of 2 must stop the pipelined
  // execution with the cross-stage message, whatever the depth.
  DatabaseSource backend(&db_, &catalog_);
  ExecutionOptions options;
  options.max_bindings = 2;
  options.runtime.metering = true;
  options.runtime.pipeline_depth = 3;
  ExecutionResult result = Execute(query_, catalog_, &backend, options);
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("max_bindings"), std::string::npos);
  EXPECT_TRUE(result.tuples.empty());
}

TEST_F(PipelineExecutorTest, UnionSharesTheStackAndAccumulatesCounters) {
  const UnionQuery u = MustParseUnionQuery(
      "Q(x, w) :- R(x, z), T(z, w), not S(z).\n"
      "Q(x, w) :- R(x, z), T(z, w).");
  DatabaseSource backend(&db_, &catalog_);
  ExecutionOptions options;
  options.runtime.metering = true;
  options.runtime.pipeline_depth = 2;
  ExecutionResult result = Execute(u, catalog_, &backend, options);
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.tuples.size(), 4u);  // the 2nd disjunct adds b-rows
  // Both disjuncts pipelined; the counters are the union's totals.
  EXPECT_GT(result.runtime.pipeline_rounds, 0u);
  EXPECT_GT(result.runtime.pipeline_overlaps, 0u);
}

}  // namespace
}  // namespace ucqn
