#include "gen/random_instance.h"

#include <gtest/gtest.h>

#include "gen/random_query.h"

namespace ucqn {
namespace {

TEST(RandomDatabaseTest, FillsEveryRelation) {
  std::mt19937 rng(5);
  Catalog catalog = RandomCatalog(&rng, {});
  RandomInstanceOptions options;
  options.domain_size = 4;
  options.tuples_per_relation = 10;
  Database db = RandomDatabase(&rng, catalog, options);
  for (const RelationSchema* schema : catalog.Relations()) {
    EXPECT_GT(db.TupleCount(schema->name()), 0u) << schema->name();
    EXPECT_LE(db.TupleCount(schema->name()), 10u);
    // Arity matches the schema.
    EXPECT_EQ(db.Find(schema->name())->begin()->size(), schema->arity());
  }
  // Domain constrained to c0..c3.
  for (const Term& t : db.ActiveDomain()) {
    EXPECT_TRUE(t.IsConstant());
    EXPECT_EQ(t.name()[0], 'c');
  }
}

TEST(RandomDatabaseTest, DeterministicUnderSeed) {
  Catalog catalog;
  {
    std::mt19937 rng(9);
    catalog = RandomCatalog(&rng, {});
  }
  std::mt19937 a(21), b(21);
  EXPECT_EQ(RandomDatabase(&a, catalog, {}).ToString(),
            RandomDatabase(&b, catalog, {}).ToString());
}

TEST(RandomDatabaseWithInclusionTest, EnforcesDependency) {
  Catalog catalog = Catalog::MustParse("R/2: oo\nS/1: o\n");
  for (int seed = 0; seed < 5; ++seed) {
    std::mt19937 rng(static_cast<unsigned>(seed));
    RandomInstanceOptions options;
    options.domain_size = 10;
    options.tuples_per_relation = 15;
    Database db = RandomDatabaseWithInclusion(&rng, catalog, options, "R", 1,
                                              "S", 0);
    // Every R.z appears in S.z (Example 6's foreign key).
    std::set<Term> s_keys;
    for (const Tuple& t : *db.Find("S")) s_keys.insert(t[0]);
    for (const Tuple& t : *db.Find("R")) {
      EXPECT_TRUE(s_keys.count(t[1]))
          << "dangling foreign key " << t[1].ToString();
    }
  }
}

TEST(RandomDatabaseWithInclusionTest, OtherRelationsUntouchedByRewrite) {
  Catalog catalog = Catalog::MustParse("R/2: oo\nS/1: o\nT/2: oo\n");
  std::mt19937 rng(3);
  Database db =
      RandomDatabaseWithInclusion(&rng, catalog, {}, "R", 1, "S", 0);
  EXPECT_GT(db.TupleCount("T"), 0u);
}

}  // namespace
}  // namespace ucqn
