#include "schema/adornment.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace ucqn {
namespace {

Catalog BookCatalog() {
  return Catalog::MustParse(R"(
    relation B/3: ioo oio
    relation C/2: oo
    relation L/1: o
  )");
}

TEST(PatternUsableTest, InputSlotsNeedBoundOrGround) {
  Literal l = MustParseRule("Q(x) :- B(i, a, t).").body()[0];
  BoundVariables bound;
  EXPECT_FALSE(PatternUsable(l, AccessPattern::MustParse("ioo"), bound));
  bound.insert("i");
  EXPECT_TRUE(PatternUsable(l, AccessPattern::MustParse("ioo"), bound));
  EXPECT_FALSE(PatternUsable(l, AccessPattern::MustParse("oio"), bound));
}

TEST(PatternUsableTest, ConstantsCountAsBound) {
  Literal l = MustParseRule("Q(a) :- B(1, a, t).").body()[0];
  BoundVariables bound;
  EXPECT_TRUE(PatternUsable(l, AccessPattern::MustParse("ioo"), bound));
}

TEST(InputVariablesTest, ExtractsInputSlotVariables) {
  Literal l = MustParseRule("Q(x) :- B(i, \"A\", t).").body()[0];
  std::vector<Term> invars =
      InputVariables(l, AccessPattern::MustParse("iio"));
  ASSERT_EQ(invars.size(), 1u);  // the constant in slot 2 is not a variable
  EXPECT_EQ(invars[0], Term::Variable("i"));
}

TEST(ChoosePatternTest, PrefersMostSelectivePattern) {
  Catalog catalog = BookCatalog();
  Literal l = MustParseRule("Q(x) :- B(i, a, t).").body()[0];
  BoundVariables bound = {"i", "a"};
  std::optional<AccessPattern> p = ChoosePattern(catalog, l, bound);
  ASSERT_TRUE(p.has_value());
  // Both ioo and oio usable; each has one input slot, so either is fine.
  EXPECT_EQ(p->InputCount(), 1u);
}

TEST(ChoosePatternTest, NegativeLiteralNeedsAllVariablesBound) {
  Catalog catalog = BookCatalog();
  Literal l = MustParseRule("Q(x) :- L(i).").body()[0].Negated();
  BoundVariables bound;
  EXPECT_FALSE(ChoosePattern(catalog, l, bound).has_value());
  bound.insert("i");
  EXPECT_TRUE(ChoosePattern(catalog, l, bound).has_value());
}

TEST(ChoosePatternTest, UndeclaredRelationFails) {
  Catalog catalog = BookCatalog();
  Literal l = MustParseRule("Q(x) :- X(x).").body()[0];
  BoundVariables bound = {"x"};
  EXPECT_FALSE(ChoosePattern(catalog, l, bound).has_value());
}

TEST(ChoosePatternTest, ArityMismatchFails) {
  Catalog catalog = BookCatalog();
  Literal l = MustParseRule("Q(x) :- L(x, y).").body()[0];
  BoundVariables bound = {"x", "y"};
  EXPECT_FALSE(ChoosePattern(catalog, l, bound).has_value());
}

TEST(IsExecutableTest, Example1OrderMatters) {
  Catalog catalog = BookCatalog();
  // As written: B first, neither ioo nor oio callable.
  EXPECT_FALSE(IsExecutable(
      MustParseRule("Q(i, a, t) :- B(i, a, t), C(i, a), not L(i)."),
      catalog));
  // Reordered: C first binds i and a.
  EXPECT_TRUE(IsExecutable(
      MustParseRule("Q(i, a, t) :- C(i, a), B(i, a, t), not L(i)."),
      catalog));
}

TEST(IsExecutableTest, NegatedLiteralCannotBind) {
  Catalog catalog = BookCatalog();
  // not L(i) first: a negated call can only filter, never bind i.
  EXPECT_FALSE(IsExecutable(
      MustParseRule("Q(i, a, t) :- not L(i), B(i, a, t), C(i, a)."),
      catalog));
}

TEST(IsExecutableTest, TrueQueryIsNotExecutable) {
  Catalog catalog = BookCatalog();
  EXPECT_FALSE(IsExecutable(MustParseRule("Q()."), catalog));
  EXPECT_FALSE(IsExecutable(MustParseRule("Q(\"a\")."), catalog));
}

TEST(IsExecutableTest, HeadVariablesMustBeBound) {
  Catalog catalog = BookCatalog();
  EXPECT_FALSE(
      IsExecutable(MustParseRule("Q(i, x) :- C(i, a)."), catalog));
}

TEST(IsExecutableTest, FalseUnionIsVacuouslyExecutable) {
  Catalog catalog = BookCatalog();
  EXPECT_TRUE(IsExecutable(UnionQuery(), catalog));
}

TEST(IsExecutableTest, UnionNeedsAllDisjunctsExecutable) {
  Catalog catalog = BookCatalog();
  UnionQuery q = MustParseUnionQuery(R"(
    Q(i, a) :- C(i, a).
    Q(i, a) :- B(i, a, t), C(i, a).
  )");
  EXPECT_FALSE(IsExecutable(q, catalog));
  UnionQuery good = MustParseUnionQuery(R"(
    Q(i, a) :- C(i, a).
    Q(i, a) :- C(i, a), B(i, a, t).
  )");
  EXPECT_TRUE(IsExecutable(good, catalog));
}

TEST(ComputeAdornmentsTest, ProducesUsablePatterns) {
  Catalog catalog = BookCatalog();
  ConjunctiveQuery q =
      MustParseRule("Q(i, a, t) :- C(i, a), B(i, a, t), not L(i).");
  std::optional<std::vector<AccessPattern>> adornments =
      ComputeAdornments(q, catalog);
  ASSERT_TRUE(adornments.has_value());
  ASSERT_EQ(adornments->size(), 3u);
  EXPECT_EQ((*adornments)[0].word(), "oo");
  // For B with i and a bound, either single-input pattern may be chosen.
  EXPECT_EQ((*adornments)[1].InputCount(), 1u);
  EXPECT_EQ((*adornments)[2].word(), "o");
}

TEST(AdornedToStringTest, RendersSuperscripts) {
  Catalog catalog = BookCatalog();
  ConjunctiveQuery q = MustParseRule("Q(i, a) :- C(i, a), not L(i).");
  std::optional<std::vector<AccessPattern>> adornments =
      ComputeAdornments(q, catalog);
  ASSERT_TRUE(adornments.has_value());
  EXPECT_EQ(AdornedToString(q, *adornments),
            "Q(i, a) :- C^oo(i, a), not L^o(i).");
}

TEST(BindVariablesTest, CollectsAllVariables) {
  BoundVariables bound;
  BindVariables(MustParseRule("Q(x) :- R(x, y, \"c\").").body()[0], &bound);
  EXPECT_EQ(bound.size(), 2u);
  EXPECT_TRUE(bound.count("x"));
  EXPECT_TRUE(bound.count("y"));
}

TEST(AllVariablesBoundTest, Basic) {
  Literal l = MustParseRule("Q(x) :- R(x, y).").body()[0];
  EXPECT_FALSE(AllVariablesBound(l, {"x"}));
  EXPECT_TRUE(AllVariablesBound(l, {"x", "y"}));
}

}  // namespace
}  // namespace ucqn
