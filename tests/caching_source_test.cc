#include "runtime/caching_source.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/answer_star.h"
#include "eval/executor.h"
#include "eval/source_adapters.h"
#include "runtime/fault_injection.h"

namespace ucqn {
namespace {

class CachingSourceTest : public ::testing::Test {
 protected:
  CachingSourceTest() {
    catalog_ = Catalog::MustParse("R/2: oo io\nS/1: o\n");
    db_ = Database::MustParseFacts(R"(
      R("a", "b").
      R("c", "d").
      S("b").
    )");
  }

  Catalog catalog_;
  Database db_;
};

TEST_F(CachingSourceTest, DeduplicatesCalls) {
  DatabaseSource backend(&db_, &catalog_);
  CachingSource cached(&backend);
  const AccessPattern scan = AccessPattern::MustParse("oo");
  std::vector<Tuple> first =
      cached.FetchOrDie("R", scan, {std::nullopt, std::nullopt});
  std::vector<Tuple> second =
      cached.FetchOrDie("R", scan, {std::nullopt, std::nullopt});
  EXPECT_EQ(first, second);
  EXPECT_EQ(backend.stats().calls, 1u);
  EXPECT_EQ(cached.cache_stats().hits, 1u);
  EXPECT_EQ(cached.cache_stats().misses, 1u);
  EXPECT_EQ(cached.cache_stats().evictions, 0u);
}

TEST_F(CachingSourceTest, CacheKeyIncludesInputValues) {
  DatabaseSource backend(&db_, &catalog_);
  CachingSource cached(&backend);
  const AccessPattern keyed = AccessPattern::MustParse("io");
  cached.FetchOrDie("R", keyed, {Term::Constant("a"), std::nullopt});
  cached.FetchOrDie("R", keyed, {Term::Constant("c"), std::nullopt});
  EXPECT_EQ(backend.stats().calls, 2u);  // different keys
  cached.FetchOrDie("R", keyed, {Term::Constant("a"), std::nullopt});
  EXPECT_EQ(backend.stats().calls, 2u);  // hit
}

TEST_F(CachingSourceTest, OutputSlotValuesDoNotSplitTheCache) {
  DatabaseSource backend(&db_, &catalog_);
  CachingSource cached(&backend);
  const AccessPattern keyed = AccessPattern::MustParse("io");
  // The executor may pass bound values at output slots; the source ignores
  // them (footnote 4), so the cache must too.
  cached.FetchOrDie("R", keyed, {Term::Constant("a"), Term::Constant("b")});
  cached.FetchOrDie("R", keyed, {Term::Constant("a"), Term::Constant("x")});
  cached.FetchOrDie("R", keyed, {Term::Constant("a"), std::nullopt});
  EXPECT_EQ(backend.stats().calls, 1u);
  EXPECT_EQ(cached.cache_stats().hits, 2u);
}

TEST_F(CachingSourceTest, InvalidateDropsEntries) {
  DatabaseSource backend(&db_, &catalog_);
  CachingSource cached(&backend);
  const AccessPattern scan = AccessPattern::MustParse("o");
  cached.FetchOrDie("S", scan, {std::nullopt});
  EXPECT_EQ(cached.size(), 1u);
  cached.Invalidate();
  EXPECT_EQ(cached.size(), 0u);
  cached.FetchOrDie("S", scan, {std::nullopt});
  EXPECT_EQ(backend.stats().calls, 2u);
}

TEST_F(CachingSourceTest, InvalidateRelationIsSelective) {
  DatabaseSource backend(&db_, &catalog_);
  CachingSource cached(&backend);
  cached.FetchOrDie("R", AccessPattern::MustParse("oo"),
                    {std::nullopt, std::nullopt});
  cached.FetchOrDie("S", AccessPattern::MustParse("o"), {std::nullopt});
  EXPECT_EQ(cached.size(), 2u);
  // Only S's service changed; R's entry survives.
  cached.InvalidateRelation("S");
  EXPECT_EQ(cached.size(), 1u);
  cached.FetchOrDie("R", AccessPattern::MustParse("oo"),
                    {std::nullopt, std::nullopt});
  EXPECT_EQ(backend.stats().calls, 2u);  // R still a hit
  cached.FetchOrDie("S", AccessPattern::MustParse("o"), {std::nullopt});
  EXPECT_EQ(backend.stats().calls, 3u);  // S refetched
}

TEST_F(CachingSourceTest, LruEvictsLeastRecentlyUsed) {
  DatabaseSource backend(&db_, &catalog_);
  CachingSource cached(&backend, /*capacity=*/2);
  const AccessPattern keyed = AccessPattern::MustParse("io");
  cached.FetchOrDie("R", keyed, {Term::Constant("a"), std::nullopt});  // A
  cached.FetchOrDie("R", keyed, {Term::Constant("c"), std::nullopt});  // B
  // Touch A so B becomes the LRU entry.
  cached.FetchOrDie("R", keyed, {Term::Constant("a"), std::nullopt});
  // C evicts B.
  cached.FetchOrDie("R", keyed, {Term::Constant("x"), std::nullopt});
  EXPECT_EQ(cached.size(), 2u);
  EXPECT_EQ(cached.cache_stats().evictions, 1u);
  // A still cached; B gone.
  cached.FetchOrDie("R", keyed, {Term::Constant("a"), std::nullopt});
  EXPECT_EQ(backend.stats().calls, 3u);
  cached.FetchOrDie("R", keyed, {Term::Constant("c"), std::nullopt});
  EXPECT_EQ(backend.stats().calls, 4u);
}

TEST_F(CachingSourceTest, CapacityZeroIsUnbounded) {
  DatabaseSource backend(&db_, &catalog_);
  CachingSource cached(&backend, /*capacity=*/0);
  const AccessPattern keyed = AccessPattern::MustParse("io");
  for (int i = 0; i < 100; ++i) {
    cached.FetchOrDie("R", keyed,
                      {Term::Constant("k" + std::to_string(i)), std::nullopt});
  }
  EXPECT_EQ(cached.size(), 100u);
  EXPECT_EQ(cached.cache_stats().evictions, 0u);
}

TEST_F(CachingSourceTest, FailedCallsAreNotCached) {
  DatabaseSource backend(&db_, &catalog_);
  FaultPlan plan;
  plan.fail_first_calls = 1;
  FaultInjectingSource flaky(&backend, plan);
  CachingSource cached(&flaky);
  const AccessPattern scan = AccessPattern::MustParse("o");
  FetchResult failed = cached.Fetch("S", scan, {std::nullopt});
  EXPECT_FALSE(failed.ok());
  EXPECT_EQ(cached.size(), 0u);
  // The same call succeeds once the fault clears — a cached error would
  // have pinned the failure.
  FetchResult retried = cached.Fetch("S", scan, {std::nullopt});
  ASSERT_TRUE(retried.ok());
  EXPECT_EQ(retried.tuples.size(), 1u);
  EXPECT_EQ(cached.size(), 1u);
}

TEST_F(CachingSourceTest, CachedAnswerStarSavesBackendCalls) {
  // ANSWER* executes Q^u and Q^o, which overlap; the cache absorbs the
  // duplicate calls without changing the report.
  UnionQuery q = MustParseUnionQuery("Q(x) :- R(x, z), not S(z).");
  DatabaseSource plain_backend(&db_, &catalog_);
  AnswerStarReport plain = AnswerStar(q, catalog_, &plain_backend);

  DatabaseSource cached_backend(&db_, &catalog_);
  CachingSource cached(&cached_backend);
  AnswerStarReport with_cache = AnswerStar(q, catalog_, &cached);

  EXPECT_EQ(plain.under, with_cache.under);
  EXPECT_EQ(plain.over, with_cache.over);
  EXPECT_LT(cached_backend.stats().calls, plain_backend.stats().calls);
}

TEST_F(CachingSourceTest, StacksOverComposite) {
  // Cache in front of a composite: the common deployment shape.
  DatabaseSource backend(&db_, &catalog_);
  CompositeSource mediator;
  mediator.Route("R", &backend);
  mediator.Route("S", &backend);
  CachingSource cached(&mediator);
  ExecutionResult a =
      Execute(MustParseRule("Q(x) :- R(x, z), not S(z)."), catalog_, &cached);
  ExecutionResult b =
      Execute(MustParseRule("Q(x) :- R(x, z), not S(z)."), catalog_, &cached);
  ASSERT_TRUE(a.ok && b.ok);
  EXPECT_EQ(a.tuples, b.tuples);
  EXPECT_GT(cached.cache_stats().hits, 0u);
}

}  // namespace
}  // namespace ucqn
