// Regression corpus for the dictionary-encoded executor: across the
// paper's worked examples (gen/scenarios.h, Examples 1-10) and the
// parallelism x pipeline-depth grid, the encoded columnar path must be
// byte-identical to the string-path oracle (--no-dictionary) — answer
// sets, ANSWER* brackets and summaries, witness order, runtime ledgers,
// and error messages.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "ast/parser.h"
#include "eval/answer_star.h"
#include "eval/executor.h"
#include "feasibility/plan_star.h"
#include "gen/scenarios.h"

namespace ucqn {
namespace {

ExecutionOptions GridOptions(bool dictionary, std::size_t parallelism,
                             std::size_t pipeline_depth) {
  ExecutionOptions options;
  options.batch = true;
  options.dictionary = dictionary;
  options.runtime.metering = true;  // force a stack so depth > 1 engages
  options.runtime.parallelism = parallelism;
  options.runtime.pipeline_depth = pipeline_depth;
  return options;
}

std::vector<std::string> BindingStrings(const BindingsResult& result) {
  std::vector<std::string> order;
  order.reserve(result.bindings.size());
  for (const Substitution& binding : result.bindings) {
    order.push_back(binding.ToString());
  }
  return order;
}

TEST(EncodedExecutorTest, AnswerStarBracketsMatchTheOracleAcrossTheGrid) {
  for (const Scenario& scenario : AllScenarios()) {
    for (std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
      for (std::size_t depth : {std::size_t{1}, std::size_t{2}}) {
        SCOPED_TRACE(scenario.name + " parallelism=" +
                     std::to_string(parallelism) +
                     " depth=" + std::to_string(depth));

        DatabaseSource oracle_backend(&scenario.database, &scenario.catalog);
        AnswerStarReport oracle =
            AnswerStar(scenario.query, scenario.catalog, &oracle_backend,
                       GridOptions(/*dictionary=*/false, parallelism, depth));
        ASSERT_TRUE(oracle.ok) << oracle.error;

        DatabaseSource encoded_backend(&scenario.database, &scenario.catalog);
        AnswerStarReport encoded =
            AnswerStar(scenario.query, scenario.catalog, &encoded_backend,
                       GridOptions(/*dictionary=*/true, parallelism, depth));
        ASSERT_TRUE(encoded.ok) << encoded.error;

        // The full bracket, byte for byte — including the null-padded
        // overestimate rows (Ex. 7) that exercise the Δ-null sentinel.
        EXPECT_EQ(encoded.under, oracle.under);
        EXPECT_EQ(encoded.over, oracle.over);
        EXPECT_EQ(encoded.delta, oracle.delta);
        EXPECT_EQ(encoded.complete, oracle.complete);
        EXPECT_EQ(encoded.delta_has_nulls, oracle.delta_has_nulls);
        EXPECT_EQ(encoded.completeness_lower_bound,
                  oracle.completeness_lower_bound);
        EXPECT_EQ(encoded.Summary(), oracle.Summary());
        // Same physical calls: encoding changes representation, not the
        // call waves the dedup produces.
        EXPECT_EQ(encoded.runtime.source_calls, oracle.runtime.source_calls);
      }
    }
  }
}

TEST(EncodedExecutorTest, WitnessOrderMatchesTheOracleAcrossTheGrid) {
  for (const Scenario& scenario : AllScenarios()) {
    const PlanStarResult plans = PlanStar(scenario.query, scenario.catalog);
    // Both estimate plans are executable by construction; every disjunct
    // must replay the oracle's witness sequence exactly, not just its set.
    std::vector<ConjunctiveQuery> bodies;
    bodies.insert(bodies.end(), plans.under.disjuncts().begin(),
                  plans.under.disjuncts().end());
    bodies.insert(bodies.end(), plans.over.disjuncts().begin(),
                  plans.over.disjuncts().end());
    for (std::size_t i = 0; i < bodies.size(); ++i) {
      for (std::size_t parallelism : {std::size_t{1}, std::size_t{4}}) {
        for (std::size_t depth : {std::size_t{1}, std::size_t{2}}) {
          SCOPED_TRACE(scenario.name + " disjunct=" + std::to_string(i) +
                       " parallelism=" + std::to_string(parallelism) +
                       " depth=" + std::to_string(depth));

          DatabaseSource oracle_backend(&scenario.database, &scenario.catalog);
          BindingsResult oracle = ExecuteForBindings(
              bodies[i], scenario.catalog, &oracle_backend,
              GridOptions(/*dictionary=*/false, parallelism, depth));

          DatabaseSource encoded_backend(&scenario.database,
                                         &scenario.catalog);
          BindingsResult encoded = ExecuteForBindings(
              bodies[i], scenario.catalog, &encoded_backend,
              GridOptions(/*dictionary=*/true, parallelism, depth));

          ASSERT_EQ(encoded.ok, oracle.ok) << encoded.error << " vs "
                                           << oracle.error;
          if (!oracle.ok) {
            EXPECT_EQ(encoded.error, oracle.error);
            continue;
          }
          EXPECT_EQ(BindingStrings(encoded), BindingStrings(oracle));
        }
      }
    }
  }
}

TEST(EncodedExecutorTest, EncodedPathMatchesTheReferenceLoop) {
  // Against the per-binding reference semantics (batch off), not just the
  // batched string path: the two oracles agree, so this pins the encoded
  // path to the paper's left-to-right reading directly.
  for (const Scenario& scenario : AllScenarios()) {
    SCOPED_TRACE(scenario.name);
    const PlanStarResult plans = PlanStar(scenario.query, scenario.catalog);

    DatabaseSource reference_backend(&scenario.database, &scenario.catalog);
    ExecutionOptions reference_options;
    reference_options.batch = false;
    ExecutionResult reference = Execute(plans.under, scenario.catalog,
                                        &reference_backend, reference_options);
    ASSERT_TRUE(reference.ok) << reference.error;

    DatabaseSource encoded_backend(&scenario.database, &scenario.catalog);
    ExecutionResult encoded =
        Execute(plans.under, scenario.catalog, &encoded_backend,
                GridOptions(/*dictionary=*/true, 1, 1));
    ASSERT_TRUE(encoded.ok) << encoded.error;
    EXPECT_EQ(encoded.tuples, reference.tuples);
  }
}

TEST(EncodedExecutorTest, ErrorMessagesMatchTheOracle) {
  const Catalog catalog = Catalog::MustParse("R/2: oo\nT/2: io\n");
  const Database db = Database::MustParseFacts(R"(
    R("a", "b").
    R("c", "d").
    R("e", "f").
    T("b", "t1").
  )");
  const ConjunctiveQuery query = MustParseRule("Q(x, w) :- R(x, z), T(z, w).");

  // max_bindings trips at the same literal with the same message.
  for (bool dictionary : {false, true}) {
    SCOPED_TRACE(dictionary ? "encoded" : "oracle");
    DatabaseSource backend(&db, &catalog);
    ExecutionOptions options = GridOptions(dictionary, 1, 1);
    options.max_bindings = 2;
    ExecutionResult result = Execute(query, catalog, &backend, options);
    EXPECT_FALSE(result.ok);
    EXPECT_EQ(result.error,
              "execution exceeded max_bindings (2) at literal R(x, z)");
  }

  // A literal with no usable pattern fails identically.
  const ConjunctiveQuery gap = MustParseRule("Q(x, w) :- T(z, w), R(x, z).");
  std::string oracle_error;
  for (bool dictionary : {false, true}) {
    DatabaseSource backend(&db, &catalog);
    ExecutionResult result =
        Execute(gap, catalog, &backend, GridOptions(dictionary, 1, 1));
    EXPECT_FALSE(result.ok);
    if (!dictionary) {
      oracle_error = result.error;
      EXPECT_NE(oracle_error.find("no usable access pattern"),
                std::string::npos);
    } else {
      EXPECT_EQ(result.error, oracle_error);
    }
  }
}

TEST(EncodedExecutorTest, SharedCacheLedgerMatchesTheOracle) {
  // With the shared cache on, hit/miss/insert counts are part of the
  // byte-identical contract: the packed id keys must group calls exactly
  // like the textual keys did.
  const Catalog catalog = Catalog::MustParse("R/2: oo io\nT/2: io\nS/1: o\n");
  const Database db = Database::MustParseFacts(R"(
    R("a", "b").
    R("c", "b").
    R("e", "d").
    T("b", "t1").
    T("d", "t2").
    S("d").
  )");
  const ConjunctiveQuery query =
      MustParseRule("Q(x, w) :- R(x, z), T(z, w), not S(z).");

  std::uint64_t oracle_calls = 0;
  for (bool dictionary : {false, true}) {
    SCOPED_TRACE(dictionary ? "encoded" : "oracle");
    DatabaseSource backend(&db, &catalog);
    ExecutionOptions options = GridOptions(dictionary, 1, 1);
    options.runtime.cache = true;
    ExecutionResult result = Execute(query, catalog, &backend, options);
    ASSERT_TRUE(result.ok) << result.error;
    EXPECT_EQ(result.tuples.size(), 2u);  // Q("a","t1"), Q("c","t1")
    if (!dictionary) {
      oracle_calls = result.runtime.source_calls;
    } else {
      EXPECT_EQ(result.runtime.source_calls, oracle_calls);
    }
  }
}

}  // namespace
}  // namespace ucqn
