// Delta feeds (src/eval/delta.h): batch normalization against the live
// instance, scoped cache invalidation, and standing-query maintenance —
// including the sign-flipping anti-join cases and delete-then-reinsert.
// The randomized cross-check against from-scratch runs lives in
// delta_oracle_test.cc; these are the hand-sized corners.

#include "eval/delta.h"

#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "ast/parser.h"
#include "eval/answer_star.h"
#include "feasibility/compile.h"
#include "runtime/shared_cache.h"

namespace ucqn {
namespace {

Tuple T1(const std::string& a) { return {Term::Constant(a)}; }
Tuple T2(const std::string& a, const std::string& b) {
  return {Term::Constant(a), Term::Constant(b)};
}

TEST(ApplyDeltaTest, NormalizesAgainstTheLiveInstance) {
  Database db = Database::MustParseFacts(R"(
    B("a", "x").
    B("b", "y").
  )");

  // Restating an existing tuple and deleting an absent one are both
  // no-ops: the effective delta is empty and nothing downstream fires.
  RelationDelta noop;
  noop.relation = "B";
  noop.inserts = {T2("a", "x")};
  noop.deletes = {T2("z", "z")};
  std::optional<AppliedDelta> applied = ApplyDelta(&db, noop);
  ASSERT_TRUE(applied.has_value());
  EXPECT_TRUE(applied->empty());
  EXPECT_EQ(db.TupleCount("B"), 2u);

  // Deletes apply before inserts: a tuple in both sets stays present and
  // the effective delta does not report it at all.
  RelationDelta both;
  both.relation = "B";
  both.inserts = {T2("a", "x"), T2("c", "z")};
  both.deletes = {T2("a", "x"), T2("b", "y")};
  applied = ApplyDelta(&db, both);
  ASSERT_TRUE(applied.has_value());
  EXPECT_TRUE(db.Contains("B", T2("a", "x")));
  EXPECT_TRUE(db.Contains("B", T2("c", "z")));
  EXPECT_FALSE(db.Contains("B", T2("b", "y")));
  EXPECT_EQ(applied->inserted, std::set<Tuple>({T2("c", "z")}));
  EXPECT_EQ(applied->deleted, std::set<Tuple>({T2("b", "y")}));
  EXPECT_EQ(applied->ChangedTuples().size(), 2u);
}

TEST(ApplyDeltaTest, RejectsBadBatchesWithoutTouchingTheDatabase) {
  Database db = Database::MustParseFacts(R"(B("a", "x").)");
  std::string error;

  RelationDelta wrong_arity;
  wrong_arity.relation = "B";
  wrong_arity.inserts = {T2("c", "z"), T1("only-one")};
  EXPECT_FALSE(ApplyDelta(&db, wrong_arity, &error).has_value());
  EXPECT_NE(error.find("arity"), std::string::npos);
  // The whole batch was validated up front: the good tuple did not land.
  EXPECT_EQ(db.TupleCount("B"), 1u);
  EXPECT_FALSE(db.Contains("B", T2("c", "z")));

  RelationDelta non_ground;
  non_ground.relation = "B";
  non_ground.inserts = {{Term::Variable("x"), Term::Constant("y")}};
  EXPECT_FALSE(ApplyDelta(&db, non_ground, &error).has_value());
  EXPECT_EQ(db.TupleCount("B"), 1u);
}

TEST(InvalidateDeltaTest, DropsOnlyKeysTheChangedTuplesCanMatch) {
  SharedCacheStore store;
  const std::string key_a = PackSourceCacheSignature(
      "B", "io", {Term::Constant("a"), std::nullopt});
  const std::string key_b = PackSourceCacheSignature(
      "B", "io", {Term::Constant("b"), std::nullopt});
  const std::string key_scan =
      PackSourceCacheSignature("B", "oo", {std::nullopt, std::nullopt});
  const std::string key_other =
      PackSourceCacheSignature("L", "o", {std::nullopt});
  for (const std::string& key : {key_a, key_b, key_scan}) {
    ASSERT_EQ(store.TryAcquire(key, "B").state,
              SharedCacheStore::LookupState::kLeader);
    store.Publish(key, "B", {});
  }
  ASSERT_EQ(store.TryAcquire(key_other, "L").state,
            SharedCacheStore::LookupState::kLeader);
  store.Publish(key_other, "L", {T1("a")});
  ASSERT_EQ(store.size(), 4u);

  // ("a", "x") agrees with key_a's bound slot and (vacuously) with the
  // full scan; key_b is bound to a different value and survives, as does
  // the other relation.
  const std::size_t dropped = store.InvalidateDelta("B", {T2("a", "x")});
  EXPECT_EQ(dropped, 2u);
  EXPECT_EQ(store.size(), 2u);
  EXPECT_EQ(store.TryAcquire(key_b, "B").state,
            SharedCacheStore::LookupState::kHit);
  EXPECT_EQ(store.TryAcquire(key_other, "L").state,
            SharedCacheStore::LookupState::kHit);
  EXPECT_EQ(store.stats().invalidated, 2u);
}

TEST(InvalidateDeltaTest, OpaqueKeysAreDroppedConservatively) {
  SharedCacheStore store;
  ASSERT_EQ(store.TryAcquire("opaque-key", "B").state,
            SharedCacheStore::LookupState::kLeader);
  store.Publish("opaque-key", "B", {T2("q", "r")});
  // The key cannot be unpacked, so scoping is impossible — it must go.
  EXPECT_EQ(store.InvalidateDelta("B", {T2("zzz", "zzz")}), 1u);
  EXPECT_EQ(store.size(), 0u);
}

// ---------------------------------------------------------------------------
// Standing-query maintenance. Every case asserts the maintained report
// equals a from-scratch ANSWER* run on the post-update instance.

void ExpectMatchesFreshRun(const StandingQuery& standing,
                           const UnionQuery& compiled, const Catalog& catalog,
                           const Database& db) {
  DatabaseSource backend(&db, &catalog);
  const AnswerStarReport fresh =
      AnswerStar(compiled, catalog, &backend, ExecutionOptions{});
  ASSERT_TRUE(fresh.ok) << fresh.error;
  const StandingAnswers maintained = standing.Answers();
  EXPECT_EQ(maintained.under, fresh.under);
  EXPECT_EQ(maintained.over, fresh.over);
  EXPECT_EQ(maintained.delta, fresh.delta);
  EXPECT_EQ(maintained.complete, fresh.complete);
  EXPECT_EQ(maintained.delta_has_nulls, fresh.delta_has_nulls);
  EXPECT_EQ(maintained.completeness_lower_bound,
            fresh.completeness_lower_bound);
}

struct StandingFixture {
  Catalog catalog;
  Database db;
  UnionQuery compiled;
  std::unique_ptr<DatabaseSource> backend;
  std::unique_ptr<StandingQuery> standing;

  StandingFixture(const std::string& schema, const std::string& facts,
                  const std::string& query_text)
      : catalog(Catalog::MustParse(schema)),
        db(Database::MustParseFacts(facts)) {
    std::string error;
    std::optional<UnionQuery> query = ParseUnionQuery(query_text, &error);
    EXPECT_TRUE(query.has_value()) << error;
    compiled = Compile(*query, catalog, {}).analyzed_query;
    backend = std::make_unique<DatabaseSource>(&db, &catalog);
    standing = StandingQuery::Build(compiled, catalog, backend.get(), &error);
    EXPECT_NE(standing, nullptr) << error;
  }

  // Applies one multi-relation batch end to end: database first, then the
  // standing query against the post-update state.
  void Apply(std::vector<RelationDelta> batch) {
    std::vector<AppliedDelta> applied;
    for (const RelationDelta& group : batch) {
      std::string error;
      std::optional<AppliedDelta> one = ApplyDelta(&db, group, &error);
      ASSERT_TRUE(one.has_value()) << error;
      if (!one->empty()) applied.push_back(std::move(*one));
    }
    std::string error;
    ASSERT_TRUE(standing->ApplyDeltas(applied, backend.get(), &error))
        << error;
  }

  void ExpectFresh() { ExpectMatchesFreshRun(*standing, compiled, catalog, db); }
};

TEST(StandingQueryTest, MaintainsAJoinUnderInsertsAndDeletes) {
  StandingFixture fx("L/1: o\nB/2: io\n",
                     R"(
                       L("a"). L("b").
                       B("a", "x"). B("b", "y").
                     )",
                     "Q(x, y) :- L(x), B(x, y).");
  fx.ExpectFresh();

  // Insert into the probe side: a new derivation flows forward.
  fx.Apply({RelationDelta{"B", {T2("a", "x2")}, {}}});
  fx.ExpectFresh();
  EXPECT_EQ(fx.standing->Answers().under.size(), 3u);

  // Delete from the scan side: every derivation through it dies.
  fx.Apply({RelationDelta{"L", {}, {T1("b")}}});
  fx.ExpectFresh();
  EXPECT_EQ(fx.standing->Answers().under.size(), 2u);

  // Multi-relation batch applied as one maintenance call.
  fx.Apply({RelationDelta{"L", {T1("c")}, {T1("a")}},
            RelationDelta{"B", {T2("c", "w")}, {T2("a", "x")}}});
  fx.ExpectFresh();
  EXPECT_EQ(fx.standing->Answers().under, std::set<Tuple>({T2("c", "w")}));
}

TEST(StandingQueryTest, DeleteThenReinsertRestoresTheOriginalAnswers) {
  StandingFixture fx("L/1: o\nB/2: io\n",
                     R"(
                       L("a"). L("b").
                       B("a", "x"). B("b", "y").
                     )",
                     "Q(x, y) :- L(x), B(x, y).");
  const StandingAnswers before = fx.standing->Answers();
  ASSERT_EQ(before.under.size(), 2u);

  fx.Apply({RelationDelta{"B", {}, {T2("a", "x")}}});
  fx.ExpectFresh();
  EXPECT_EQ(fx.standing->Answers().under.size(), 1u);

  fx.Apply({RelationDelta{"B", {T2("a", "x")}, {}}});
  fx.ExpectFresh();
  EXPECT_EQ(fx.standing->Answers().under, before.under);
  EXPECT_EQ(fx.standing->Answers().over, before.over);
}

TEST(StandingQueryTest, AntiJoinFlipsInBothDirections) {
  StandingFixture fx("L/1: o\nE/1: o\n",
                     R"(
                       L("a"). L("b").
                       E("b").
                     )",
                     "Q(x) :- L(x), not E(x).");
  fx.ExpectFresh();
  ASSERT_EQ(fx.standing->Answers().under, std::set<Tuple>({T1("a")}));

  // Insert into the negated relation: a standing answer is *killed*.
  fx.Apply({RelationDelta{"E", {T1("a")}, {}}});
  fx.ExpectFresh();
  EXPECT_TRUE(fx.standing->Answers().under.empty());

  // Delete from the negated relation: dead derivations are *revived*.
  fx.Apply({RelationDelta{"E", {}, {T1("a"), T1("b")}}});
  fx.ExpectFresh();
  EXPECT_EQ(fx.standing->Answers().under,
            std::set<Tuple>({T1("a"), T1("b")}));
}

TEST(StandingQueryTest, SelfJoinInsertProducesEachDerivationOnce) {
  // One relation at both chain positions: an inserted edge participates
  // as the first hop, the second hop, and both at once — the base_end
  // discipline must produce each new derivation exactly once.
  StandingFixture fx("C/2: oo io\n",
                     R"(
                       C("a", "b"). C("b", "c").
                     )",
                     "Q(x, z) :- C(x, y), C(y, z).");
  fx.ExpectFresh();

  // ("c", "a") closes a cycle: new paths through position 1, position 2,
  // and the inserted edge twice (c->a->b).
  fx.Apply({RelationDelta{"C", {T2("c", "a")}, {}}});
  fx.ExpectFresh();

  // A self-loop joins with itself.
  fx.Apply({RelationDelta{"C", {T2("d", "d")}, {}}});
  fx.ExpectFresh();
  EXPECT_TRUE(fx.standing->Answers().under.count(T2("d", "d")));
}

TEST(StandingQueryTest, UnionsMaintainEachDisjunctIndependently) {
  StandingFixture fx("L/1: o\nM/1: o\n",
                     R"(
                       L("a"). M("b").
                     )",
                     "Q(x) :- L(x).\nQ(x) :- M(x).");
  fx.ExpectFresh();
  fx.Apply({RelationDelta{"M", {T1("c")}, {T1("b")}}});
  fx.ExpectFresh();
  EXPECT_EQ(fx.standing->Answers().under,
            std::set<Tuple>({T1("a"), T1("c")}));
  EXPECT_EQ(fx.standing->relations(), std::set<std::string>({"L", "M"}));
}

}  // namespace
}  // namespace ucqn
