#include "eval/answer_star.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "eval/oracle.h"
#include "gen/scenarios.h"

namespace ucqn {
namespace {

AnswerStarReport RunScenario(const Scenario& s) {
  DatabaseSource source(&s.database, &s.catalog);
  return AnswerStar(s.query, s.catalog, &source);
}

TEST(AnswerStarTest, Example4CompleteDespiteInfeasibility) {
  Scenario s = Example4UnderOver();
  AnswerStarReport report = RunScenario(s);
  // S(b) holds, so R(x,z),¬S(z) yields nothing: Δ = ∅ and the answer is
  // complete although Q is infeasible.
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.delta.empty());
  EXPECT_EQ(report.under.size(), 2u);  // the two T tuples
  EXPECT_EQ(report.under, report.over);
  EXPECT_NE(report.Summary().find("answer is complete"), std::string::npos);
}

TEST(AnswerStarTest, Example6ForeignKeyForcesCompleteness) {
  Scenario s = Example6ForeignKey();
  AnswerStarReport report = RunScenario(s);
  EXPECT_TRUE(report.complete);
  // The underestimate equals the true answer.
  EXPECT_EQ(report.under, OracleEvaluate(s.query, s.database));
}

TEST(AnswerStarTest, Example7NullTupleInDelta) {
  Scenario s = Example7Nulls();
  AnswerStarReport report = RunScenario(s);
  EXPECT_FALSE(report.complete);
  EXPECT_TRUE(report.delta_has_nulls);
  // With nulls in Δ, no numeric completeness bound can be given.
  EXPECT_FALSE(report.completeness_lower_bound.has_value());
  ASSERT_EQ(report.delta.size(), 1u);
  EXPECT_EQ(*report.delta.begin(),
            (Tuple{Term::Constant("a"), Term::Null()}));
  EXPECT_NE(report.Summary().find("may be part of the answer"),
            std::string::npos);
}

TEST(AnswerStarTest, CompletenessRatioWithoutNulls) {
  // Craft a query whose overestimate adds null-free tuples: the
  // unanswerable literal is boolean (no new head variables).
  Catalog catalog = Catalog::MustParse("R/2: oo\nP/1: i\nT/2: oo\n");
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x, y) :- R(x, y), P(x).
    Q(x, y) :- T(x, y).
  )");
  Database db = Database::MustParseFacts(R"(
    R("r1", "s1").
    P("r1").
    T("t1", "t2").
  )");
  DatabaseSource source(&db, &catalog);
  AnswerStarReport report = AnswerStar(q, catalog, &source);
  // P(x) is answerable?? P^i with x bound by R — yes; so plans coincide.
  EXPECT_TRUE(report.complete);

  // Now make P truly unanswerable by giving it an unbound variable.
  UnionQuery q2 = MustParseUnionQuery(R"(
    Q(x, y) :- R(x, y), P(w).
    Q(x, y) :- T(x, y).
  )");
  AnswerStarReport report2 = AnswerStar(q2, catalog, &source);
  EXPECT_FALSE(report2.complete);
  EXPECT_FALSE(report2.delta_has_nulls);
  ASSERT_TRUE(report2.completeness_lower_bound.has_value());
  // under = {t1 tuple}; over adds the R tuple: 1/2.
  EXPECT_DOUBLE_EQ(*report2.completeness_lower_bound, 0.5);
  EXPECT_NE(report2.Summary().find("at least"), std::string::npos);
}

TEST(AnswerStarTest, UnderestimateIsSound) {
  // Every tuple of ansᵤ must be a genuine answer (Qᵘ ⊑ Q pointwise).
  for (const Scenario& s : AllScenarios()) {
    AnswerStarReport report = RunScenario(s);
    std::set<Tuple> truth = OracleEvaluate(s.query, s.database);
    for (const Tuple& t : report.under) {
      EXPECT_TRUE(truth.count(t))
          << s.name << ": spurious underestimate tuple " << TupleToString(t);
    }
  }
}

TEST(AnswerStarTest, OverestimateCoversTruthModuloNulls) {
  // Every true answer must appear in ansₒ, possibly with nulls in the
  // columns the overestimate could not compute.
  for (const Scenario& s : AllScenarios()) {
    AnswerStarReport report = RunScenario(s);
    std::set<Tuple> truth = OracleEvaluate(s.query, s.database);
    for (const Tuple& t : truth) {
      bool covered = false;
      for (const Tuple& o : report.over) {
        if (o.size() != t.size()) continue;
        bool match = true;
        for (std::size_t j = 0; j < t.size(); ++j) {
          if (!o[j].IsNull() && o[j] != t[j]) {
            match = false;
            break;
          }
        }
        if (match) {
          covered = true;
          break;
        }
      }
      EXPECT_TRUE(covered) << s.name << ": answer " << TupleToString(t)
                           << " missing from overestimate";
    }
  }
}

TEST(AnswerStarTest, FeasibleQueryAlwaysComplete) {
  Scenario s = Example1Books();
  AnswerStarReport report = RunScenario(s);
  EXPECT_TRUE(report.complete);
  EXPECT_EQ(report.under, OracleEvaluate(s.query, s.database));
}

TEST(AnswerStarTest, EmptyDatabaseIsCompleteAndEmpty) {
  Scenario s = Example4UnderOver();
  Database empty;
  DatabaseSource source(&empty, &s.catalog);
  AnswerStarReport report = AnswerStar(s.query, s.catalog, &source);
  EXPECT_TRUE(report.complete);
  EXPECT_TRUE(report.under.empty());
}

}  // namespace
}  // namespace ucqn
