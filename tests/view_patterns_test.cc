#include "feasibility/view_patterns.h"

#include <gtest/gtest.h>

#include "ast/parser.h"
#include "feasibility/feasible.h"

namespace ucqn {
namespace {

TEST(FeasibleWithHeadPatternTest, ParameterUnblocksInputOnlySource) {
  // Image^io needs the subject; the view alone is infeasible, but with the
  // subject supplied by the caller it becomes executable.
  Catalog catalog = Catalog::MustParse("Image/2: io\n");
  UnionQuery view = MustParseUnionQuery("V(s, i) :- Image(s, i).");
  EXPECT_FALSE(IsFeasible(view, catalog));
  EXPECT_FALSE(FeasibleWithHeadPattern(view, catalog,
                                       AccessPattern::MustParse("oo")));
  EXPECT_TRUE(FeasibleWithHeadPattern(view, catalog,
                                      AccessPattern::MustParse("io")));
  // Binding the output column does not help: s stays unbound.
  EXPECT_FALSE(FeasibleWithHeadPattern(view, catalog,
                                       AccessPattern::MustParse("oi")));
  EXPECT_TRUE(FeasibleWithHeadPattern(view, catalog,
                                      AccessPattern::MustParse("ii")));
}

TEST(FeasibleWithHeadPatternTest, FeasibleViewSupportsEverything) {
  Catalog catalog = Catalog::MustParse("R/2: oo\n");
  UnionQuery view = MustParseUnionQuery("V(x, y) :- R(x, y).");
  for (const char* word : {"oo", "io", "oi", "ii"}) {
    EXPECT_TRUE(FeasibleWithHeadPattern(view, catalog,
                                        AccessPattern::MustParse(word)))
        << word;
  }
}

TEST(FeasibleWithHeadPatternTest, ParametersFlowIntoAllDisjuncts) {
  Catalog catalog = Catalog::MustParse("A/2: io\nB/2: io\n");
  UnionQuery view = MustParseUnionQuery(R"(
    V(k, v) :- A(k, v).
    V(k, v) :- B(k, v).
  )");
  EXPECT_TRUE(FeasibleWithHeadPattern(view, catalog,
                                      AccessPattern::MustParse("io")));
  EXPECT_FALSE(FeasibleWithHeadPattern(view, catalog,
                                       AccessPattern::MustParse("oo")));
}

TEST(FeasibleWithHeadPatternTest, RepeatedHeadVariable) {
  Catalog catalog = Catalog::MustParse("R/2: io\n");
  UnionQuery view = MustParseUnionQuery("V(x, x) :- R(x, x).");
  // Supplying either column supplies x.
  EXPECT_TRUE(FeasibleWithHeadPattern(view, catalog,
                                      AccessPattern::MustParse("io")));
  EXPECT_TRUE(FeasibleWithHeadPattern(view, catalog,
                                      AccessPattern::MustParse("oi")));
  EXPECT_FALSE(FeasibleWithHeadPattern(view, catalog,
                                       AccessPattern::MustParse("oo")));
}

TEST(SupportedHeadPatternsTest, EnumerationAndMonotonicity) {
  Catalog catalog = Catalog::MustParse("Image/2: io\n");
  UnionQuery view = MustParseUnionQuery("V(s, i) :- Image(s, i).");
  std::vector<AccessPattern> supported = SupportedHeadPatterns(view, catalog);
  // Supported: io and ii ("bound is easier" closure of io).
  ASSERT_EQ(supported.size(), 2u);
  EXPECT_EQ(supported[0].word(), "ii");
  EXPECT_EQ(supported[1].word(), "io");

  std::vector<AccessPattern> minimal =
      MinimalSupportedHeadPatterns(view, catalog);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0].word(), "io");
}

TEST(SupportedHeadPatternsTest, FeasibleViewAdvertisesAllOutput) {
  Catalog catalog = Catalog::MustParse("R/2: oo\n");
  UnionQuery view = MustParseUnionQuery("V(x, y) :- R(x, y).");
  std::vector<AccessPattern> minimal =
      MinimalSupportedHeadPatterns(view, catalog);
  ASSERT_EQ(minimal.size(), 1u);
  EXPECT_EQ(minimal[0].word(), "oo");
  EXPECT_EQ(SupportedHeadPatterns(view, catalog).size(), 4u);
}

TEST(SupportedHeadPatternsTest, HopelessViewSupportsNothing) {
  // The existential w can never be bound, no matter which head columns the
  // caller provides.
  Catalog catalog = Catalog::MustParse("R/2: oo\nB/1: i\n");
  UnionQuery view = MustParseUnionQuery("V(x, y) :- R(x, y), B(w).");
  EXPECT_TRUE(SupportedHeadPatterns(view, catalog).empty());
  EXPECT_TRUE(MinimalSupportedHeadPatterns(view, catalog).empty());
}

TEST(SupportedHeadPatternsTest, ViewsBecomeSources) {
  // The derived patterns can be registered in a higher-level catalog and
  // queried against — the mediator-over-mediator composition.
  Catalog sources = Catalog::MustParse("Image/2: io\nSubjects/1: o\n");
  UnionQuery view = MustParseUnionQuery("V(s, i) :- Image(s, i).");
  Catalog upper;
  upper.AddRelation("V", 2);
  for (const AccessPattern& p : MinimalSupportedHeadPatterns(view, sources)) {
    upper.AddPattern("V", p.word());
  }
  upper.AddPattern("Subjects", "o");
  // A client query over the view: feasible because Subjects seeds s.
  UnionQuery client =
      MustParseUnionQuery("Q(s, i) :- Subjects(s), V(s, i).");
  EXPECT_TRUE(IsFeasible(client, upper));
  // Without the seed, infeasible — exactly what V^io advertises.
  EXPECT_FALSE(
      IsFeasible(MustParseUnionQuery("Q(s, i) :- V(s, i)."), upper));
}

TEST(SupportedHeadPatternsTest, HeadConstantsAreNeutral) {
  Catalog catalog = Catalog::MustParse("R/2: io\n");
  UnionQuery view = MustParseUnionQuery("V(\"tag\", y) :- R(\"tag\", y).");
  // The constant column contributes nothing either way; feasibility holds
  // for every adornment because R's input slot is the constant.
  EXPECT_EQ(SupportedHeadPatterns(view, catalog).size(), 4u);
}

TEST(SupportedHeadPatternsTest, FalseViewHasNoPatterns) {
  Catalog catalog;
  EXPECT_TRUE(SupportedHeadPatterns(UnionQuery(), catalog).empty());
}

}  // namespace
}  // namespace ucqn
