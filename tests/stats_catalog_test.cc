// StatsCatalog: merging observed runtime metrics across executions,
// snapshotting a MeteredSource, and the JSON round-trip behind
// `ucqnc --stats-out` / `--stats-in`.

#include "cost/stats_catalog.h"

#include <gtest/gtest.h>

#include "eval/database.h"
#include "runtime/clock.h"
#include "runtime/fault_injection.h"
#include "runtime/metered_source.h"
#include "schema/catalog.h"

namespace ucqn {
namespace {

TEST(RelationStatsTest, MeanTuplesPerCall) {
  RelationStats stats;
  EXPECT_DOUBLE_EQ(stats.MeanTuplesPerCall(), 0.0);  // no division by zero
  stats.calls = 4;
  stats.tuples = 10;
  EXPECT_DOUBLE_EQ(stats.MeanTuplesPerCall(), 2.5);
}

TEST(StatsCatalogTest, RecordMergesCountersAndWeightsLatency) {
  StatsCatalog catalog;
  EXPECT_TRUE(catalog.empty());
  EXPECT_EQ(catalog.Find("R"), nullptr);

  RelationStats first;
  first.calls = 3;
  first.errors = 1;
  first.tuples = 9;
  first.p50_latency_micros = 100.0;
  catalog.Record("R", first);

  RelationStats second;
  second.calls = 1;
  second.errors = 0;
  second.tuples = 5;
  second.p50_latency_micros = 500.0;
  catalog.Record("R", second);

  const RelationStats* merged = catalog.Find("R");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->calls, 4u);
  EXPECT_EQ(merged->errors, 1u);
  EXPECT_EQ(merged->tuples, 14u);
  // Call-count-weighted average: (3*100 + 1*500) / 4.
  EXPECT_DOUBLE_EQ(merged->p50_latency_micros, 200.0);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(StatsCatalogTest, ObserveSnapshotsAMeteredSource) {
  Catalog schema = Catalog::MustParse("R/1: o\nS/1: o\n");
  Database db = Database::MustParseFacts(R"(
    R("a").
    R("b").
    S("c").
  )");
  DatabaseSource backend(&db, &schema);
  FaultPlan faults;
  faults.latency_micros = 300;
  SimulatedClock clock;
  FaultInjectingSource slow(&backend, faults, &clock);
  MeteredSource meter(&slow, &clock);

  AccessPattern scan = AccessPattern::MustParse("o");
  ASSERT_TRUE(meter.Fetch("R", scan, {std::nullopt}).ok());
  ASSERT_TRUE(meter.Fetch("R", scan, {std::nullopt}).ok());
  ASSERT_TRUE(meter.Fetch("S", scan, {std::nullopt}).ok());

  StatsCatalog stats;
  stats.Observe(meter);
  const RelationStats* r = stats.Find("R");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->calls, 2u);
  EXPECT_EQ(r->tuples, 4u);
  // 300us sleeps land in the [256, 512) histogram bucket; the snapshot
  // carries the bucket's inclusive upper bound.
  EXPECT_DOUBLE_EQ(r->p50_latency_micros, 511.0);
  const RelationStats* s = stats.Find("S");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->calls, 1u);
  EXPECT_EQ(s->tuples, 1u);
}

TEST(StatsCatalogTest, JsonRoundTrip) {
  StatsCatalog catalog;
  RelationStats r;
  r.calls = 64;
  r.errors = 2;
  r.tuples = 640;
  r.p50_latency_micros = 5000.0;
  catalog.Record("Lookup", r);
  RelationStats s;
  s.calls = 1;
  s.tuples = 64;
  s.p50_latency_micros = 512.0;
  catalog.Record("Seed", s);

  const std::string json = catalog.ToJson();
  std::string error;
  std::optional<StatsCatalog> parsed = StatsCatalog::FromJson(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->size(), 2u);
  const RelationStats* lookup = parsed->Find("Lookup");
  ASSERT_NE(lookup, nullptr);
  EXPECT_EQ(lookup->calls, 64u);
  EXPECT_EQ(lookup->errors, 2u);
  EXPECT_EQ(lookup->tuples, 640u);
  EXPECT_DOUBLE_EQ(lookup->p50_latency_micros, 5000.0);
  const RelationStats* seed = parsed->Find("Seed");
  ASSERT_NE(seed, nullptr);
  EXPECT_EQ(seed->calls, 1u);
  // A second round-trip is byte-stable.
  EXPECT_EQ(parsed->ToJson(), json);
}

TEST(StatsCatalogTest, FromJsonIgnoresUnknownScalarKeys) {
  // Forward compatibility: a snapshot from a newer version with extra
  // per-relation fields still loads.
  const std::string json =
      R"({"relations": {"R": {"calls": 2, "tuples": 6, "p99_latency_us": 9.0,)"
      R"( "p50_latency_us": 128.0}}})";
  std::string error;
  std::optional<StatsCatalog> parsed = StatsCatalog::FromJson(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const RelationStats* r = parsed->Find("R");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->calls, 2u);
  EXPECT_EQ(r->tuples, 6u);
  EXPECT_DOUBLE_EQ(r->p50_latency_micros, 128.0);
}

TEST(StatsCatalogTest, FromJsonRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(StatsCatalog::FromJson("", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(StatsCatalog::FromJson("{", &error).has_value());
  EXPECT_FALSE(StatsCatalog::FromJson(R"({"relations": [1, 2]})", &error)
                   .has_value());
  EXPECT_FALSE(
      StatsCatalog::FromJson(R"({"relations": {"R": {"calls": }}})", &error)
          .has_value());
}

TEST(StatsCatalogTest, ObserveTwiceAccumulates) {
  // The documented contract: Observe() merges, so observing two separate
  // meters (two executions) sums their counters.
  Catalog schema = Catalog::MustParse("R/1: o\n");
  Database db = Database::MustParseFacts("R(\"a\").\n");
  AccessPattern scan = AccessPattern::MustParse("o");
  StatsCatalog stats;
  for (int run = 0; run < 2; ++run) {
    DatabaseSource backend(&db, &schema);
    MeteredSource meter(&backend);
    ASSERT_TRUE(meter.Fetch("R", scan, {std::nullopt}).ok());
    stats.Observe(meter);
  }
  const RelationStats* r = stats.Find("R");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->calls, 2u);
  EXPECT_EQ(r->tuples, 2u);
}

}  // namespace
}  // namespace ucqn
