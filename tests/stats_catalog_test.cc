// StatsCatalog: merging observed runtime metrics across executions,
// snapshotting a MeteredSource, and the JSON round-trip behind
// `ucqnc --stats-out` / `--stats-in`.

#include "cost/stats_catalog.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "eval/database.h"
#include "runtime/clock.h"
#include "runtime/fault_injection.h"
#include "runtime/metered_source.h"
#include "schema/catalog.h"

namespace ucqn {
namespace {

TEST(RelationStatsTest, MeanTuplesPerCall) {
  RelationStats stats;
  EXPECT_DOUBLE_EQ(stats.MeanTuplesPerCall(), 0.0);  // no division by zero
  stats.calls = 4;
  stats.tuples = 10;
  EXPECT_DOUBLE_EQ(stats.MeanTuplesPerCall(), 2.5);
}

TEST(StatsCatalogTest, RecordMergesCountersAndWeightsLatency) {
  StatsCatalog catalog;
  EXPECT_TRUE(catalog.empty());
  EXPECT_EQ(catalog.Find("R"), nullptr);

  RelationStats first;
  first.calls = 3;
  first.errors = 1;
  first.tuples = 9;
  first.p50_latency_micros = 100.0;
  catalog.Record("R", first);

  RelationStats second;
  second.calls = 1;
  second.errors = 0;
  second.tuples = 5;
  second.p50_latency_micros = 500.0;
  catalog.Record("R", second);

  const RelationStats* merged = catalog.Find("R");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->calls, 4u);
  EXPECT_EQ(merged->errors, 1u);
  EXPECT_EQ(merged->tuples, 14u);
  // Call-count-weighted average: (3*100 + 1*500) / 4.
  EXPECT_DOUBLE_EQ(merged->p50_latency_micros, 200.0);
  EXPECT_EQ(catalog.size(), 1u);
}

TEST(StatsCatalogTest, ObserveSnapshotsAMeteredSource) {
  Catalog schema = Catalog::MustParse("R/1: o\nS/1: o\n");
  Database db = Database::MustParseFacts(R"(
    R("a").
    R("b").
    S("c").
  )");
  DatabaseSource backend(&db, &schema);
  FaultPlan faults;
  faults.latency_micros = 300;
  SimulatedClock clock;
  FaultInjectingSource slow(&backend, faults, &clock);
  MeteredSource meter(&slow, &clock);

  AccessPattern scan = AccessPattern::MustParse("o");
  ASSERT_TRUE(meter.Fetch("R", scan, {std::nullopt}).ok());
  ASSERT_TRUE(meter.Fetch("R", scan, {std::nullopt}).ok());
  ASSERT_TRUE(meter.Fetch("S", scan, {std::nullopt}).ok());

  StatsCatalog stats;
  stats.Observe(meter);
  const RelationStats* r = stats.Find("R");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->calls, 2u);
  EXPECT_EQ(r->tuples, 4u);
  // 300us sleeps land in the [256, 512) histogram bucket; the snapshot
  // carries the bucket's inclusive upper bound.
  EXPECT_DOUBLE_EQ(r->p50_latency_micros, 511.0);
  const RelationStats* s = stats.Find("S");
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->calls, 1u);
  EXPECT_EQ(s->tuples, 1u);
}

TEST(StatsCatalogTest, JsonRoundTrip) {
  StatsCatalog catalog;
  RelationStats r;
  r.calls = 64;
  r.errors = 2;
  r.tuples = 640;
  r.p50_latency_micros = 5000.0;
  catalog.Record("Lookup", r);
  RelationStats s;
  s.calls = 1;
  s.tuples = 64;
  s.p50_latency_micros = 512.0;
  catalog.Record("Seed", s);

  const std::string json = catalog.ToJson();
  std::string error;
  std::optional<StatsCatalog> parsed = StatsCatalog::FromJson(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  EXPECT_EQ(parsed->size(), 2u);
  const RelationStats* lookup = parsed->Find("Lookup");
  ASSERT_NE(lookup, nullptr);
  EXPECT_EQ(lookup->calls, 64u);
  EXPECT_EQ(lookup->errors, 2u);
  EXPECT_EQ(lookup->tuples, 640u);
  EXPECT_DOUBLE_EQ(lookup->p50_latency_micros, 5000.0);
  const RelationStats* seed = parsed->Find("Seed");
  ASSERT_NE(seed, nullptr);
  EXPECT_EQ(seed->calls, 1u);
  // A second round-trip is byte-stable.
  EXPECT_EQ(parsed->ToJson(), json);
}

TEST(StatsCatalogTest, FromJsonIgnoresUnknownScalarKeys) {
  // Forward compatibility: a snapshot from a newer version with extra
  // per-relation fields still loads.
  const std::string json =
      R"({"relations": {"R": {"calls": 2, "tuples": 6, "p99_latency_us": 9.0,)"
      R"( "p50_latency_us": 128.0}}})";
  std::string error;
  std::optional<StatsCatalog> parsed = StatsCatalog::FromJson(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const RelationStats* r = parsed->Find("R");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->calls, 2u);
  EXPECT_EQ(r->tuples, 6u);
  EXPECT_DOUBLE_EQ(r->p50_latency_micros, 128.0);
}

TEST(StatsCatalogTest, FromJsonRejectsMalformedInput) {
  std::string error;
  EXPECT_FALSE(StatsCatalog::FromJson("", &error).has_value());
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(StatsCatalog::FromJson("{", &error).has_value());
  EXPECT_FALSE(StatsCatalog::FromJson(R"({"relations": [1, 2]})", &error)
                   .has_value());
  EXPECT_FALSE(
      StatsCatalog::FromJson(R"({"relations": {"R": {"calls": }}})", &error)
          .has_value());
}

TEST(StatsCatalogTest, KeyedRecordSplitsPatternsAndFoldsPooled) {
  StatsCatalog catalog;
  RelationStats point;
  point.calls = 4;
  point.tuples = 4;
  point.p50_latency_micros = 100.0;
  catalog.Record("R", "io", point);
  RelationStats scan;
  scan.calls = 1;
  scan.tuples = 1000;
  scan.p50_latency_micros = 9000.0;
  catalog.Record("R", "oo", scan);

  // Each pattern keeps its own entry...
  const RelationStats* keyed = catalog.Find("R", "io");
  ASSERT_NE(keyed, nullptr);
  EXPECT_EQ(keyed->calls, 4u);
  EXPECT_DOUBLE_EQ(keyed->p50_latency_micros, 100.0);
  const RelationStats* scanned = catalog.Find("R", "oo");
  ASSERT_NE(scanned, nullptr);
  EXPECT_DOUBLE_EQ(scanned->p50_latency_micros, 9000.0);
  EXPECT_EQ(catalog.Find("R", "ii"), nullptr);
  // ...and the pooled entry stays the sum (weighted latency: 5*x = 4*100
  // + 1*9000).
  const RelationStats* pooled = catalog.Find("R");
  ASSERT_NE(pooled, nullptr);
  EXPECT_EQ(pooled->calls, 5u);
  EXPECT_EQ(pooled->tuples, 1004u);
  EXPECT_DOUBLE_EQ(pooled->p50_latency_micros, 1880.0);
}

TEST(StatsCatalogTest, ObserveKeysEntriesPerAccessPattern) {
  Catalog schema = Catalog::MustParse("R/2: oo io\n");
  Database db = Database::MustParseFacts(R"(
    R("a", "b").
    R("c", "d").
  )");
  DatabaseSource backend(&db, &schema);
  MeteredSource meter(&backend);
  ASSERT_TRUE(meter.Fetch("R", AccessPattern::MustParse("oo"),
                          {std::nullopt, std::nullopt})
                  .ok());
  ASSERT_TRUE(meter.Fetch("R", AccessPattern::MustParse("io"),
                          {Term::Constant("a"), std::nullopt})
                  .ok());

  StatsCatalog stats;
  stats.Observe(meter);
  const RelationStats* scan = stats.Find("R", "oo");
  ASSERT_NE(scan, nullptr);
  EXPECT_EQ(scan->calls, 1u);
  EXPECT_EQ(scan->tuples, 2u);
  const RelationStats* keyed = stats.Find("R", "io");
  ASSERT_NE(keyed, nullptr);
  EXPECT_EQ(keyed->calls, 1u);
  EXPECT_EQ(keyed->tuples, 1u);
  const RelationStats* pooled = stats.Find("R");
  ASSERT_NE(pooled, nullptr);
  EXPECT_EQ(pooled->calls, 2u);
  EXPECT_EQ(pooled->tuples, 3u);
}

TEST(StatsCatalogTest, KeyedJsonRoundTripIsByteStable) {
  StatsCatalog catalog;
  RelationStats point;
  point.calls = 4;
  point.tuples = 4;
  point.p50_latency_micros = 100.0;
  catalog.Record("R", "io", point);
  RelationStats scan;
  scan.calls = 1;
  scan.tuples = 1000;
  scan.p50_latency_micros = 9000.0;
  catalog.Record("R", "oo", scan);
  RelationStats pooled_only;
  pooled_only.calls = 7;
  catalog.Record("S", pooled_only);

  const std::string json = catalog.ToJson();
  EXPECT_NE(json.find("\"patterns\""), std::string::npos);
  std::string error;
  std::optional<StatsCatalog> parsed = StatsCatalog::FromJson(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const RelationStats* keyed = parsed->Find("R", "io");
  ASSERT_NE(keyed, nullptr);
  EXPECT_EQ(keyed->calls, 4u);
  EXPECT_DOUBLE_EQ(keyed->p50_latency_micros, 100.0);
  const RelationStats* pooled = parsed->Find("R");
  ASSERT_NE(pooled, nullptr);
  EXPECT_EQ(pooled->calls, 5u);
  // S never had keyed stats; reloading must not invent any.
  EXPECT_EQ(parsed->patterns().count("S"), 0u);
  EXPECT_EQ(parsed->ToJson(), json);
}

TEST(StatsCatalogTest, PreSplitSnapshotMigratesAsPooledOnly) {
  // A snapshot written before the per-pattern split has no "patterns"
  // objects. It must load (pooled answers still work), report no keyed
  // entries, and — so old fleets can keep exchanging snapshots — write
  // back in the identical pre-split format.
  const std::string old_json =
      R"({"relations": {"Lookup": {"calls": 64, "errors": 2, "tuples": 640,)"
      R"( "p50_latency_us": 5000.0}}})";
  std::string error;
  std::optional<StatsCatalog> parsed =
      StatsCatalog::FromJson(old_json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const RelationStats* pooled = parsed->Find("Lookup");
  ASSERT_NE(pooled, nullptr);
  EXPECT_EQ(pooled->calls, 64u);
  EXPECT_DOUBLE_EQ(pooled->p50_latency_micros, 5000.0);
  EXPECT_EQ(parsed->Find("Lookup", "io"), nullptr);
  EXPECT_TRUE(parsed->patterns().empty());
  EXPECT_EQ(parsed->ToJson().find("\"patterns\""), std::string::npos);
  // Round-trip through the current writer stays loadable and stable.
  std::optional<StatsCatalog> again =
      StatsCatalog::FromJson(parsed->ToJson(), &error);
  ASSERT_TRUE(again.has_value()) << error;
  EXPECT_EQ(again->ToJson(), parsed->ToJson());
}

TEST(StatsCatalogTest, ZeroCallSnapshotsNeverPoisonTheLatencyAverage) {
  // Satellite regression: merging a zero-call observation must leave the
  // weighted p50 untouched instead of computing 0/0 = NaN — the classic
  // fully-cached-run snapshot, where the meter saw lookups but no
  // physical calls. And once an entry is NaN it stays NaN forever, so
  // this guards the whole adaptive feedback loop.
  StatsCatalog catalog;
  RelationStats empty;  // calls = 0, p50 = 0.0
  catalog.Record("R", empty);
  const RelationStats* after_empty = catalog.Find("R");
  ASSERT_NE(after_empty, nullptr);
  EXPECT_EQ(after_empty->calls, 0u);
  EXPECT_TRUE(std::isfinite(after_empty->p50_latency_micros));
  EXPECT_DOUBLE_EQ(after_empty->p50_latency_micros, 0.0);

  // A later real observation merges cleanly on top of the placeholder.
  RelationStats real;
  real.calls = 2;
  real.tuples = 4;
  real.p50_latency_micros = 300.0;
  catalog.Record("R", real);
  const RelationStats* merged = catalog.Find("R");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->calls, 2u);
  EXPECT_DOUBLE_EQ(merged->p50_latency_micros, 300.0);

  // And a zero-call observation on top of real stats changes nothing.
  catalog.Record("R", empty);
  EXPECT_DOUBLE_EQ(catalog.Find("R")->p50_latency_micros, 300.0);

  // Keyed entries take the same guarded path.
  catalog.Record("S", "io", empty);
  catalog.Record("S", "io", real);
  const RelationStats* keyed = catalog.Find("S", "io");
  ASSERT_NE(keyed, nullptr);
  EXPECT_DOUBLE_EQ(keyed->p50_latency_micros, 300.0);
}

TEST(StatsCatalogTest, NonFiniteLatencyInAMergeIsDiscarded) {
  // A corrupted in-memory observation (inf/NaN p50) must not infect the
  // pooled average: the counters still merge, the latency keeps its last
  // finite value.
  StatsCatalog catalog;
  RelationStats good;
  good.calls = 3;
  good.p50_latency_micros = 100.0;
  catalog.Record("R", good);
  RelationStats bad;
  bad.calls = 1;
  bad.p50_latency_micros = std::numeric_limits<double>::quiet_NaN();
  catalog.Record("R", bad);
  const RelationStats* merged = catalog.Find("R");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->calls, 4u);
  EXPECT_TRUE(std::isfinite(merged->p50_latency_micros));
  EXPECT_DOUBLE_EQ(merged->p50_latency_micros, 100.0);
}

TEST(StatsCatalogTest, FromJsonSanitizesNonFiniteLatency) {
  // strtod-style parsing turns "1e999" into +inf; a snapshot carrying it
  // must load with the latency clamped to 0, not propagate inf into
  // every future weighted merge (and NaN into inf * 0 paths).
  const std::string json =
      R"({"relations": {"R": {"calls": 2, "tuples": 6,)"
      R"( "p50_latency_us": 1e999}}})";
  std::string error;
  std::optional<StatsCatalog> parsed = StatsCatalog::FromJson(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const RelationStats* r = parsed->Find("R");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->calls, 2u);
  EXPECT_TRUE(std::isfinite(r->p50_latency_micros));
  EXPECT_DOUBLE_EQ(r->p50_latency_micros, 0.0);
  // The sanitized snapshot re-serializes as plain finite JSON.
  std::optional<StatsCatalog> again =
      StatsCatalog::FromJson(parsed->ToJson(), &error);
  ASSERT_TRUE(again.has_value()) << error;
}

TEST(StatsCatalogTest, FanoutMergesLikeLatency) {
  // The fanout pair follows the p50 discipline: call-count-weighted
  // average over the snapshots that actually observed successful calls.
  StatsCatalog catalog;
  RelationStats first;
  first.calls = 3;
  first.tuples = 9;
  first.mean_fanout = 3.0;
  first.fanout_calls = 3;
  catalog.Record("R", first);
  RelationStats second;
  second.calls = 1;
  second.tuples = 7;
  second.mean_fanout = 7.0;
  second.fanout_calls = 1;
  catalog.Record("R", second);
  const RelationStats* merged = catalog.Find("R");
  ASSERT_NE(merged, nullptr);
  // (3*3 + 1*7) / 4.
  EXPECT_DOUBLE_EQ(merged->mean_fanout, 4.0);
  EXPECT_EQ(merged->fanout_calls, 4u);

  // A zero-fanout-call snapshot (the fully-cached run) changes nothing.
  RelationStats cached;
  cached.calls = 5;  // lookups happened, physical fanout never observed
  catalog.Record("R", cached);
  EXPECT_DOUBLE_EQ(catalog.Find("R")->mean_fanout, 4.0);
  EXPECT_EQ(catalog.Find("R")->fanout_calls, 4u);

  // A non-finite observation merges its counters but not its fanout.
  RelationStats bad;
  bad.calls = 1;
  bad.mean_fanout = std::numeric_limits<double>::infinity();
  bad.fanout_calls = 1;
  catalog.Record("R", bad);
  const RelationStats* after_bad = catalog.Find("R");
  EXPECT_TRUE(std::isfinite(after_bad->mean_fanout));
  EXPECT_DOUBLE_EQ(after_bad->mean_fanout, 4.0);
  EXPECT_EQ(after_bad->fanout_calls, 4u);
}

TEST(StatsCatalogTest, FanoutJsonRoundTripsAndSanitizes) {
  StatsCatalog catalog;
  RelationStats observed;
  observed.calls = 4;
  observed.tuples = 12;
  observed.mean_fanout = 3.0;
  observed.fanout_calls = 4;
  catalog.Record("R", "io", observed);
  RelationStats never;  // fanout never observed: the fields stay out
  never.calls = 2;
  catalog.Record("S", never);

  const std::string json = catalog.ToJson();
  EXPECT_NE(json.find("\"fanout\""), std::string::npos);
  std::string error;
  std::optional<StatsCatalog> parsed = StatsCatalog::FromJson(json, &error);
  ASSERT_TRUE(parsed.has_value()) << error;
  const RelationStats* keyed = parsed->Find("R", "io");
  ASSERT_NE(keyed, nullptr);
  EXPECT_DOUBLE_EQ(keyed->mean_fanout, 3.0);
  EXPECT_EQ(keyed->fanout_calls, 4u);
  EXPECT_EQ(parsed->ToJson(), json);  // byte-stable

  // A hand-edited snapshot with 1e999 fanout (strtod: +inf) loads with
  // the pair zeroed, exactly like the p50 path.
  const std::string corrupt =
      R"({"relations": {"R": {"calls": 2, "tuples": 6,)"
      R"( "p50_latency_us": 10, "fanout": 1e999, "fanout_calls": 2}}})";
  std::optional<StatsCatalog> sanitized =
      StatsCatalog::FromJson(corrupt, &error);
  ASSERT_TRUE(sanitized.has_value()) << error;
  const RelationStats* r = sanitized->Find("R");
  ASSERT_NE(r, nullptr);
  EXPECT_DOUBLE_EQ(r->mean_fanout, 0.0);
  EXPECT_EQ(r->fanout_calls, 0u);

  // And a fanout with no fanout_calls at all is a claim with no weight:
  // it must not survive the load either.
  const std::string weightless =
      R"({"relations": {"R": {"calls": 2, "fanout": 5.0}}})";
  std::optional<StatsCatalog> unweighted =
      StatsCatalog::FromJson(weightless, &error);
  ASSERT_TRUE(unweighted.has_value()) << error;
  EXPECT_DOUBLE_EQ(unweighted->Find("R")->mean_fanout, 0.0);
  EXPECT_EQ(unweighted->Find("R")->fanout_calls, 0u);
}

TEST(StatsCatalogTest, ObserveRecordsFanoutFromSuccessfulCalls) {
  // Observe() derives the fanout from the meter: tuples over successful
  // (non-error) calls, so a flaky service's failed calls don't dilute
  // the per-call yield estimate.
  Catalog schema = Catalog::MustParse("R/1: o\n");
  Database db = Database::MustParseFacts("R(\"a\").\nR(\"b\").\n");
  DatabaseSource backend(&db, &schema);
  MeteredSource metered(&backend);
  AccessPattern scan = AccessPattern::MustParse("o");
  metered.Fetch("R", scan, {std::nullopt});
  StatsCatalog stats;
  stats.Observe(metered);
  const RelationStats* r = stats.Find("R");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->fanout_calls, 1u);
  EXPECT_DOUBLE_EQ(r->mean_fanout, 2.0);  // the scan saw the whole relation
}

TEST(StatsCatalogTest, ObserveTwiceAccumulates) {
  // The documented contract: Observe() merges, so observing two separate
  // meters (two executions) sums their counters.
  Catalog schema = Catalog::MustParse("R/1: o\n");
  Database db = Database::MustParseFacts("R(\"a\").\n");
  AccessPattern scan = AccessPattern::MustParse("o");
  StatsCatalog stats;
  for (int run = 0; run < 2; ++run) {
    DatabaseSource backend(&db, &schema);
    MeteredSource meter(&backend);
    ASSERT_TRUE(meter.Fetch("R", scan, {std::nullopt}).ok());
    stats.Observe(meter);
  }
  const RelationStats* r = stats.Find("R");
  ASSERT_NE(r, nullptr);
  EXPECT_EQ(r->calls, 2u);
  EXPECT_EQ(r->tuples, 2u);
}

TEST(StatsCatalogTest, InvalidateRelationForgetsPooledAndKeyedEntries) {
  // The staleness bugfix behind the daemon's `invalidate` op: dropping a
  // relation's cache entries without dropping its stats would leave the
  // planner pricing the post-update service with pre-update latencies.
  StatsCatalog stats;
  RelationStats observed;
  observed.calls = 4;
  observed.tuples = 8;
  observed.p50_latency_micros = 900.0;
  stats.Record("R", "io", observed);
  stats.Record("R", "oo", observed);
  stats.Record("S", observed);
  ASSERT_NE(stats.Find("R"), nullptr);
  ASSERT_NE(stats.Find("R", "io"), nullptr);

  // Pooled entry + two keyed entries erased; other relations untouched.
  EXPECT_EQ(stats.InvalidateRelation("R"), 3u);
  EXPECT_EQ(stats.Find("R"), nullptr);
  EXPECT_EQ(stats.Find("R", "io"), nullptr);
  EXPECT_EQ(stats.Find("R", "oo"), nullptr);
  ASSERT_NE(stats.Find("S"), nullptr);
  EXPECT_EQ(stats.patterns().count("R"), 0u);

  // Already-forgotten relations report zero erased (idempotent).
  EXPECT_EQ(stats.InvalidateRelation("R"), 0u);
  EXPECT_EQ(stats.InvalidateRelation("never-seen"), 0u);
}

}  // namespace
}  // namespace ucqn
