#include "ast/query.h"

#include <gtest/gtest.h>

#include "ast/parser.h"

namespace ucqn {
namespace {

TEST(ConjunctiveQueryTest, FreeAndAllVariables) {
  ConjunctiveQuery q = MustParseRule("Q(x, y) :- R(x, z), not S(z, w).");
  std::vector<Term> free = q.FreeVariables();
  ASSERT_EQ(free.size(), 2u);
  EXPECT_EQ(free[0], Term::Variable("x"));
  EXPECT_EQ(free[1], Term::Variable("y"));
  std::vector<Term> all = q.AllVariables();
  ASSERT_EQ(all.size(), 4u);  // x, y, z, w
  EXPECT_EQ(all[2], Term::Variable("z"));
  EXPECT_EQ(all[3], Term::Variable("w"));
}

TEST(ConjunctiveQueryTest, PositiveNegativeSplit) {
  ConjunctiveQuery q =
      MustParseRule("Q(x) :- R(x), not S(x), T(x), not U(x).");
  EXPECT_EQ(q.PositiveBody().size(), 2u);
  EXPECT_EQ(q.NegativeBody().size(), 2u);
  EXPECT_TRUE(q.HasNegation());
  EXPECT_FALSE(MustParseRule("Q(x) :- R(x).").HasNegation());
}

TEST(ConjunctiveQueryTest, SafetyRequiresPositiveOccurrence) {
  // Safe: every variable in a positive body literal.
  EXPECT_TRUE(MustParseRule("Q(x) :- R(x, z), not S(z).").IsSafe());
  // Unsafe: head variable y never appears in the body.
  EXPECT_FALSE(MustParseRule("Q(x, y) :- R(x).").IsSafe());
  // Unsafe: w appears only under negation (paper's Example 3 pattern).
  EXPECT_FALSE(MustParseRule("Q(x) :- R(x), not S(w).").IsSafe());
  // Safe: constants don't need coverage.
  EXPECT_TRUE(MustParseRule("Q(x) :- R(x, \"c\"), not S(\"d\").").IsSafe());
}

TEST(ConjunctiveQueryTest, UnsatisfiabilityIsSyntactic) {
  // Proposition 8: complementary pair on identical argument tuples.
  EXPECT_TRUE(MustParseRule("Q(x) :- R(x, y), not R(x, y).").IsUnsatisfiable());
  // Different argument tuples: satisfiable.
  EXPECT_FALSE(
      MustParseRule("Q(x) :- R(x, y), not R(y, x).").IsUnsatisfiable());
  EXPECT_FALSE(MustParseRule("Q(x) :- R(x).").IsUnsatisfiable());
  // Constants must also match exactly.
  EXPECT_TRUE(MustParseRule("Q(x) :- R(x, \"a\"), not R(x, \"a\"), S(x).")
                  .IsUnsatisfiable());
  EXPECT_FALSE(MustParseRule("Q(x) :- R(x, \"a\"), not R(x, \"b\"), S(x).")
                   .IsUnsatisfiable());
}

TEST(ConjunctiveQueryTest, TrueQueryAndNulls) {
  ConjunctiveQuery t = MustParseRule("Q(\"a\").");
  EXPECT_TRUE(t.IsTrueQuery());
  EXPECT_FALSE(t.ContainsNull());
  ConjunctiveQuery n = MustParseRule("Q(x, null) :- R(x).");
  EXPECT_TRUE(n.ContainsNull());
}

TEST(ConjunctiveQueryTest, SubstituteAndRename) {
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x, z).");
  Substitution s;
  s.Bind(Term::Variable("z"), Term::Constant("A"));
  ConjunctiveQuery sub = q.Substitute(s);
  EXPECT_EQ(sub.ToString(), "Q(x) :- R(x, A).");

  ConjunctiveQuery renamed = q.RenameVariables("_1");
  EXPECT_EQ(renamed.ToString(), "Q(x_1) :- R(x_1, z_1).");
}

TEST(ConjunctiveQueryTest, WithExtraLiteralAndMembership) {
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x).");
  Atom s("S", {Term::Variable("x")});
  ConjunctiveQuery extended = q.WithExtraLiteral(Literal::Positive(s));
  EXPECT_EQ(extended.body().size(), 2u);
  EXPECT_TRUE(extended.PositiveBodyContains(s));
  EXPECT_FALSE(extended.NegativeBodyContains(s));
  EXPECT_TRUE(extended.BodyContains(Literal::Positive(s)));
}

TEST(ConjunctiveQueryTest, RelationNames) {
  ConjunctiveQuery q = MustParseRule("Q(x) :- R(x), not S(x), R(x).");
  std::set<std::string> names = q.RelationNames();
  EXPECT_EQ(names, (std::set<std::string>{"R", "S"}));
}

TEST(ConjunctiveQueryTest, ConstantsCollected) {
  ConjunctiveQuery q = MustParseRule("Q(x, \"h\") :- R(x, \"a\"), S(null).");
  std::vector<Term> consts = q.Constants();
  ASSERT_EQ(consts.size(), 3u);
  EXPECT_EQ(consts[0], Term::Constant("h"));
  EXPECT_EQ(consts[1], Term::Constant("a"));
  EXPECT_EQ(consts[2], Term::Null());
}

TEST(UnionQueryTest, FalseQueryBasics) {
  UnionQuery f;
  EXPECT_TRUE(f.IsFalseQuery());
  EXPECT_EQ(f.size(), 0u);
  EXPECT_TRUE(f.IsSafe());
  EXPECT_EQ(f.ToString(), "false.");
}

TEST(UnionQueryTest, AddDisjunctChecksHead) {
  UnionQuery q(MustParseRule("Q(x) :- R(x)."));
  q.AddDisjunct(MustParseRule("Q(y) :- S(y)."));
  EXPECT_EQ(q.size(), 2u);
  EXPECT_EQ(q.head_name(), "Q");
  EXPECT_EQ(q.head_arity(), 1u);
}

TEST(UnionQueryTest, DropUnsatisfiable) {
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- R(x), not R(x).
    Q(x) :- S(x).
  )");
  UnionQuery dropped = q.DropUnsatisfiable();
  ASSERT_EQ(dropped.size(), 1u);
  EXPECT_EQ(dropped.disjuncts()[0].ToString(), "Q(x) :- S(x).");
}

TEST(UnionQueryTest, UnionProperties) {
  UnionQuery q = MustParseUnionQuery(R"(
    Q(x) :- R(x), not S(x).
    Q(x) :- T(x).
  )");
  EXPECT_TRUE(q.HasNegation());
  EXPECT_FALSE(q.ContainsNull());
  EXPECT_TRUE(q.IsSafe());
  EXPECT_EQ(q.RelationNames(), (std::set<std::string>{"R", "S", "T"}));
}

TEST(QueryToStringTest, RoundTripsThroughParser) {
  const std::string text = "Q(x, y) :- R(x, z), not S(z), T(z, y).";
  ConjunctiveQuery q = MustParseRule(text);
  EXPECT_EQ(q.ToString(), text);
  EXPECT_EQ(MustParseRule(q.ToString()), q);
}

}  // namespace
}  // namespace ucqn
